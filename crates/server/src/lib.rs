//! # epilog-server — serving the epistemic database over TCP
//!
//! A thin network skin over the concurrent serving layer: reads are
//! answered from lock-free MVCC snapshots
//! ([`ServingDb::snapshot`]), writes are queued to the single
//! group-committing writer thread. Each accepted connection gets its
//! own session thread (spawned through `threadpool::spawn_named`), so
//! a slow client never blocks another — and no session ever blocks a
//! commit, because sessions share nothing but the `Arc`-swapped head
//! state and the commit queue.
//!
//! # Wire protocol
//!
//! Line-oriented UTF-8 text over TCP (`std::net`), one request per
//! line, answered with one `ok …`/`err …` line (plus `row` lines for
//! `demo`, announced by a count). Sentences use the `epilog-syntax`
//! grammar; responses that reflect committed state carry the snapshot
//! or commit LSN after an `@`.
//!
//! | request | response |
//! |---|---|
//! | `ask <sentence>` | `ok yes\|no\|unknown @<lsn>` |
//! | `demo <sentence>` | `ok rows <n> @<lsn>`, then `n` × `row <params>` |
//! | `why <atom>` | `ok why <n> @<lsn>`, then `n` × `row <proof line>`; `ok why none @<lsn>` when underivable |
//! | `begin` | `ok begin` |
//! | `assert <sentence>` | in txn `ok queued <n>`; else `ok committed @<lsn> +<a> -<r>` |
//! | `retract <sentence>` | likewise |
//! | `commit` | `ok committed @<lsn> +<a> -<r>` or `err rejected: … @<lsn>` |
//! | `rollback` | `ok rollback <n>` |
//! | `constraint <sentence>` | `ok constraint @<lsn>` or `err rejected: … @<lsn>` |
//! | `flush` | `ok flushed @<lsn>` |
//! | `stats` | `ok stats commits=… rejected=… batches=… fsyncs=… plan_recosts=… prov_atoms=… prov_supports=…` |
//! | `quit` | `ok bye`, connection closes |
//! | `shutdown` | `ok shutting-down`, server drains and exits |
//!
//! A one-shot `assert`/`retract` outside `begin…commit` is a
//! single-operation transaction: validated, group-committed, and
//! acknowledged durable exactly like a batch.
//!
//! `why` answers from the provenance support table (serve the database
//! with [`epilog_persist::ServeOptions::provenance`] on): each `row`
//! line is one indented step of the derivation, down to EDB facts. A
//! rejected commit's `err rejected:` line states the violated
//! constraint and its ground witnesses, stamped with the LSN of the
//! state it was validated against.

use epilog_persist::{PersistError, ServeError, ServeStats, ServingDb, TxOp};
use epilog_syntax::parse;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One client connection's state: the shared database plus the
/// session's open transaction, if any.
struct Session<'a> {
    db: &'a ServingDb,
    txn: Option<Vec<TxOp>>,
}

/// What a protocol line asks the connection loop to do after replying.
enum Disposition {
    Continue,
    Close,
    ShutdownServer,
}

impl<'a> Session<'a> {
    fn new(db: &'a ServingDb) -> Session<'a> {
        Session { db, txn: None }
    }

    /// Answer one request line. The response is one or more complete
    /// lines without a trailing newline.
    fn handle(&mut self, line: &str) -> (String, Disposition) {
        let line = line.trim();
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        let reply = match verb {
            "" => Ok(String::new()),
            "ask" => self.ask(rest),
            "demo" => self.demo(rest),
            "why" => self.why(rest),
            "begin" => self.begin(),
            "assert" => self.op(rest, TxOp::Assert),
            "retract" => self.op(rest, TxOp::Retract),
            "commit" => self.commit(),
            "rollback" => self.rollback(),
            "constraint" => self.constraint(rest),
            "flush" => self.flush(),
            "stats" => Ok(stats_line(self.db)),
            "quit" => return ("ok bye".into(), Disposition::Close),
            "shutdown" => return ("ok shutting-down".into(), Disposition::ShutdownServer),
            _ => Err(format!("unknown request {verb:?}")),
        };
        match reply {
            Ok(s) if s.is_empty() => ("ok".into(), Disposition::Continue),
            Ok(s) => (s, Disposition::Continue),
            Err(e) => (format!("err {e}"), Disposition::Continue),
        }
    }

    fn ask(&self, src: &str) -> Result<String, String> {
        let q = parse(src).map_err(|e| format!("parse: {e}"))?;
        let snap = self.db.snapshot();
        let verdict = match snap.ask(&q) {
            epilog_core::Answer::Yes => "yes",
            epilog_core::Answer::No => "no",
            epilog_core::Answer::Unknown => "unknown",
        };
        Ok(format!("ok {verdict} @{}", snap.lsn()))
    }

    fn demo(&self, src: &str) -> Result<String, String> {
        let q = parse(src).map_err(|e| format!("parse: {e}"))?;
        let snap = self.db.snapshot();
        let rows = snap.demo_all(&q).map_err(|e| e.to_string())?;
        let mut out = format!("ok rows {} @{}", rows.len(), snap.lsn());
        for row in rows {
            out.push_str("\nrow");
            for p in row {
                out.push(' ');
                out.push_str(&p.to_string());
            }
        }
        Ok(out)
    }

    fn why(&self, src: &str) -> Result<String, String> {
        let q = parse(src).map_err(|e| format!("parse: {e}"))?;
        let epilog_syntax::Formula::Atom(atom) = q else {
            return Err(format!("why needs a ground atom, got {q}"));
        };
        if !atom.is_ground() {
            return Err(format!("why needs a ground atom, got {atom}"));
        }
        let snap = self.db.snapshot();
        if !snap.provenance_enabled() {
            return Err("provenance is not enabled on this server".into());
        }
        match snap.why(&atom) {
            Some(proof) => {
                let lines = proof.render();
                let mut out = format!("ok why {} @{}", lines.len(), snap.lsn());
                for l in lines {
                    out.push_str("\nrow ");
                    out.push_str(&l);
                }
                Ok(out)
            }
            None => Ok(format!("ok why none @{}", snap.lsn())),
        }
    }

    fn begin(&mut self) -> Result<String, String> {
        if self.txn.is_some() {
            return Err("transaction already open".into());
        }
        self.txn = Some(Vec::new());
        Ok("ok begin".into())
    }

    fn op(
        &mut self,
        src: &str,
        wrap: impl Fn(epilog_syntax::Formula) -> TxOp,
    ) -> Result<String, String> {
        let w = parse(src).map_err(|e| format!("parse: {e}"))?;
        match &mut self.txn {
            Some(ops) => {
                ops.push(wrap(w));
                Ok(format!("ok queued {}", ops.len()))
            }
            None => commit_ops(self.db, vec![wrap(w)]),
        }
    }

    fn commit(&mut self) -> Result<String, String> {
        let ops = self.txn.take().ok_or("no open transaction")?;
        commit_ops(self.db, ops)
    }

    fn rollback(&mut self) -> Result<String, String> {
        let ops = self.txn.take().ok_or("no open transaction")?;
        Ok(format!("ok rollback {}", ops.len()))
    }

    fn constraint(&self, src: &str) -> Result<String, String> {
        let ic = parse(src).map_err(|e| format!("parse: {e}"))?;
        match self.db.add_constraint(ic) {
            Ok(lsn) => Ok(format!("ok constraint @{lsn}")),
            Err(ServeError::Db(e, lsn)) => Err(format!("rejected: {e} @{lsn}")),
            Err(e) => Err(format!("rejected: {e}")),
        }
    }

    fn flush(&self) -> Result<String, String> {
        self.db
            .flush()
            .map(|lsn| format!("ok flushed @{lsn}"))
            .map_err(|e| e.to_string())
    }
}

fn commit_ops(db: &ServingDb, ops: Vec<TxOp>) -> Result<String, String> {
    match db.commit_wait(ops) {
        Ok(r) => Ok(format!(
            "ok committed @{} +{} -{}",
            r.lsn, r.report.asserted, r.report.retracted
        )),
        Err(ServeError::Db(e, lsn)) => Err(format!("rejected: {e} @{lsn}")),
        Err(e) => Err(e.to_string()),
    }
}

fn stats_line(db: &ServingDb) -> String {
    let s = db.stats();
    let snap = db.snapshot();
    let (prov_atoms, prov_supports) = snap.provenance_size();
    format!(
        "ok stats commits={} rejected={} batches={} fsyncs={} plan_recosts={} prov_atoms={} prov_supports={}",
        s.commits,
        s.rejected,
        s.batches,
        s.fsyncs,
        snap.plan_recosts(),
        prov_atoms,
        prov_supports
    )
}

struct Inner {
    db: ServingDb,
    stop: AtomicBool,
    // Set when a session sends `shutdown`; Server::wait blocks on it.
    wanted: Mutex<bool>,
    bell: Condvar,
    sessions: Mutex<Vec<(JoinHandle<()>, TcpStream)>>,
}

impl Inner {
    fn request_shutdown(&self) {
        *self.wanted.lock().unwrap() = true;
        self.bell.notify_all();
    }
}

/// A running TCP server over one [`ServingDb`].
///
/// Start with [`Server::start`], connect with [`Client`] (or any
/// line-oriented TCP client), stop with [`Server::shutdown`] — which
/// drains the commit queue before returning, so an `ok committed`
/// answered to any client is on disk.
pub struct Server {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serve `db` until [`Server::shutdown`].
    pub fn start(db: ServingDb, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            db,
            stop: AtomicBool::new(false),
            wanted: Mutex::new(false),
            bell: Condvar::new(),
            sessions: Mutex::new(Vec::new()),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            threadpool::spawn_named("epilog-accept", move || accept_loop(&listener, &inner))
        };
        Ok(Server {
            inner,
            accept: Some(accept),
            addr,
        })
    }

    /// The bound address (with the OS-chosen port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served database's writer counters.
    pub fn stats(&self) -> ServeStats {
        self.inner.db.stats()
    }

    /// Block until some client sends `shutdown` (the binary's main
    /// thread parks here).
    pub fn wait_for_shutdown_request(&self) {
        let mut wanted = self.inner.wanted.lock().unwrap();
        while !*wanted {
            wanted = self.inner.bell.wait(wanted).unwrap();
        }
    }

    /// Graceful shutdown: stop accepting, close live sessions, join
    /// every thread, then drain and sync the commit queue. Returns the
    /// final writer counters.
    pub fn shutdown(mut self) -> Result<ServeStats, PersistError> {
        let inner = &self.inner;
        inner.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let sessions = std::mem::take(&mut *inner.sessions.lock().unwrap());
        for (handle, stream) in sessions {
            let _ = stream.shutdown(Shutdown::Both);
            let _ = handle.join();
        }
        let stats = inner.db.stats();
        let inner = Arc::try_unwrap(self.inner)
            .unwrap_or_else(|_| unreachable!("all session threads joined; no Inner clones remain"));
        inner.db.shutdown()?;
        Ok(stats)
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(peer) = stream.try_clone() else {
            continue;
        };
        let handle = {
            let inner = Arc::clone(inner);
            threadpool::spawn_named("epilog-session", move || session_loop(stream, &inner))
        };
        inner.sessions.lock().unwrap().push((handle, peer));
    }
}

fn session_loop(stream: TcpStream, inner: &Inner) {
    // Readers and the writer queue are shared through `inner`; the
    // transaction buffer is this session's alone.
    let mut session = Session::new(&inner.db);
    let Ok(read) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read);
    let mut write = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let (reply, disposition) = session.handle(&line);
        if write.write_all(reply.as_bytes()).is_err() || write.write_all(b"\n").is_err() {
            break;
        }
        let _ = write.flush();
        match disposition {
            Disposition::Continue => {}
            Disposition::Close => break,
            Disposition::ShutdownServer => {
                inner.request_shutdown();
                break;
            }
        }
    }
}

/// A minimal blocking client for the line protocol — what the example,
/// the soak test, and scripted sessions use.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Send one request line and read the one-line response.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Read one more response line (the `row` lines after a `demo`).
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// `demo` convenience: returns the answer rows as vectors of
    /// parameter names.
    pub fn demo(&mut self, sentence: &str) -> io::Result<Vec<Vec<String>>> {
        let head = self.request(&format!("demo {sentence}"))?;
        let n: usize = head
            .strip_prefix("ok rows ")
            .and_then(|r| r.split(' ').next())
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, head.clone()))?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let line = self.read_line()?;
            let row = line
                .strip_prefix("row")
                .unwrap_or(&line)
                .split_whitespace()
                .map(str::to_string)
                .collect();
            rows.push(row);
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::Theory;
    use std::path::PathBuf;

    fn dir() -> PathBuf {
        use std::sync::atomic::AtomicU32;
        static N: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "epilog-server-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn serve(d: &std::path::Path) -> Server {
        let theory = Theory::from_text("forall x. emp(x) -> person(x)").unwrap();
        let db = ServingDb::create(d, theory, Default::default()).unwrap();
        Server::start(db, "127.0.0.1:0").unwrap()
    }

    #[test]
    fn protocol_round_trip_over_tcp() {
        let d = dir();
        let server = serve(&d);
        let mut c = Client::connect(server.local_addr()).unwrap();

        assert_eq!(
            c.request("constraint forall x. K emp(x) -> exists y. K ss(x, y)")
                .unwrap(),
            "ok constraint @1"
        );
        assert_eq!(c.request("ask K person(Mary)").unwrap(), "ok no @1");

        // A transaction: out-of-order ops are fine, validated at commit.
        assert_eq!(c.request("begin").unwrap(), "ok begin");
        assert_eq!(c.request("assert emp(Mary)").unwrap(), "ok queued 1");
        assert_eq!(c.request("assert ss(Mary, n1)").unwrap(), "ok queued 2");
        assert_eq!(c.request("commit").unwrap(), "ok committed @2 +2 -0");
        assert_eq!(c.request("ask K person(Mary)").unwrap(), "ok yes @2");

        // Constraint rejection: no ss number for Joe.
        let r = c.request("assert emp(Joe)").unwrap();
        assert!(r.starts_with("err rejected:"), "got {r}");
        assert_eq!(c.request("ask K emp(Joe)").unwrap(), "ok no @2");

        // demo returns the known employees.
        let rows = c.demo("exists x. K emp(x)").unwrap();
        assert_eq!(rows, vec![Vec::<String>::new()]);
        let rows = c.demo("K emp(x)").unwrap();
        assert_eq!(rows, vec![vec!["Mary".to_string()]]);

        // Parse errors and unknown verbs answer err without closing.
        assert!(c.request("ask ((").unwrap().starts_with("err parse:"));
        assert!(c.request("frobnicate").unwrap().starts_with("err unknown"));
        assert_eq!(c.request("rollback").unwrap(), "err no open transaction");

        let stats = c.request("stats").unwrap();
        assert!(stats.starts_with("ok stats commits=1 "), "got {stats}");
        assert_eq!(c.request("quit").unwrap(), "ok bye");

        // Two clients see the same committed state.
        let mut c2 = Client::connect(server.local_addr()).unwrap();
        assert_eq!(c2.request("ask K person(Mary)").unwrap(), "ok yes @2");

        let stats = server.shutdown().unwrap();
        assert_eq!(stats.commits, 1);
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn why_and_stamped_rejections_over_tcp() {
        let d = dir();
        let theory = Theory::from_text(
            "edge(a, b)\nedge(b, c)\nforall x. forall y. edge(x, y) -> path(x, y)\n\
             forall x. forall y. forall z. edge(x, y) & path(y, z) -> path(x, z)",
        )
        .unwrap();
        let opts = epilog_persist::ServeOptions {
            provenance: true,
            ..Default::default()
        };
        let db = ServingDb::create(&d, theory, opts).unwrap();
        let server = Server::start(db, "127.0.0.1:0").unwrap();
        let mut c = Client::connect(server.local_addr()).unwrap();

        let head = c.request("why path(a, c)").unwrap();
        assert!(head.starts_with("ok why "), "got {head}");
        let n: usize = head
            .strip_prefix("ok why ")
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(n >= 3, "conclusion plus two premises at least, got {n}");
        for _ in 0..n {
            let row = c.read_line().unwrap();
            assert!(row.starts_with("row "), "got {row}");
        }

        assert_eq!(c.request("why path(c, a)").unwrap(), "ok why none @0");
        assert!(c.request("why K edge(a, b)").unwrap().starts_with("err"));

        // Rejections carry the violated constraint, its ground
        // witnesses, and the LSN of the state they were checked on.
        assert_eq!(
            c.request("constraint forall x. ~K path(x, x)").unwrap(),
            "ok constraint @1"
        );
        let r = c.request("assert edge(c, a)").unwrap();
        assert!(r.starts_with("err rejected:"), "got {r}");
        assert!(r.ends_with("@1"), "got {r}");
        assert!(r.contains("witnesses"), "got {r}");

        let stats = c.request("stats").unwrap();
        assert!(
            stats.contains("plan_recosts=") && stats.contains("prov_atoms="),
            "got {stats}"
        );
        server.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn shutdown_request_unparks_the_waiter() {
        let d = dir();
        let server = serve(&d);
        let addr = server.local_addr();
        let poker = threadpool::spawn_named("epilog-test-poker", move || {
            let mut c = Client::connect(addr).unwrap();
            assert_eq!(c.request("shutdown").unwrap(), "ok shutting-down");
        });
        server.wait_for_shutdown_request();
        poker.join().unwrap();
        server.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }
}
