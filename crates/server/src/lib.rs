//! # epilog-server — serving the epistemic database over TCP
//!
//! A thin network skin over the concurrent serving layer: reads are
//! answered from lock-free MVCC snapshots
//! ([`ServingDb::snapshot`]), writes are queued to the single
//! group-committing writer thread. Each accepted connection gets its
//! own session thread (spawned through `threadpool::spawn_named`), so
//! a slow client never blocks another — and no session ever blocks a
//! commit, because sessions share nothing but the `Arc`-swapped head
//! state and the commit queue.
//!
//! # Wire protocol
//!
//! Line-oriented UTF-8 text over TCP (`std::net`), one request per
//! line, answered with one `ok …`/`err …` line (plus `row` lines for
//! `demo`, announced by a count). Sentences use the `epilog-syntax`
//! grammar; responses that reflect committed state carry the snapshot
//! or commit LSN after an `@`.
//!
//! | request | response |
//! |---|---|
//! | `ask <sentence>` | `ok yes\|no\|unknown @<lsn>` |
//! | `demo <sentence>` | `ok rows <n> @<lsn>`, then `n` × `row <params>` |
//! | `why <atom>` | `ok why <n> @<lsn>`, then `n` × `row <proof line>`; `ok why none @<lsn>` when underivable |
//! | `begin` | `ok begin` |
//! | `assert <sentence>` | in txn `ok queued <n>`; else `ok committed @<lsn> +<a> -<r>` |
//! | `retract <sentence>` | likewise |
//! | `commit` | `ok committed @<lsn> +<a> -<r>` or `err rejected: … @<lsn>` |
//! | `rollback` | `ok rollback <n>` |
//! | `constraint <sentence>` | `ok constraint @<lsn>` or `err rejected: … @<lsn>` |
//! | `flush` | `ok flushed @<lsn>` |
//! | `heal` | `ok healed @<lsn>` or `err heal failed: …` |
//! | `stats` | `ok stats commits=… rejected=… batches=… fsyncs=… plan_recosts=… prov_atoms=… prov_supports=… io_errors=… heals=… degraded=…` |
//! | `quit` | `ok bye`, connection closes |
//! | `shutdown` | `ok shutting-down`, server drains and exits |
//!
//! A one-shot `assert`/`retract` outside `begin…commit` is a
//! single-operation transaction: validated, group-committed, and
//! acknowledged durable exactly like a batch.
//!
//! `why` answers from the provenance support table (serve the database
//! with [`epilog_persist::ServeOptions::provenance`] on): each `row`
//! line is one indented step of the derivation, down to EDB facts. A
//! rejected commit's `err rejected:` line states the violated
//! constraint and its ground witnesses, stamped with the LSN of the
//! state it was validated against.
//!
//! # Robustness
//!
//! When the served database is in degraded read-only mode (an I/O
//! failure on the commit path), writes answer
//! `err degraded (read-only): …` while `ask`/`demo`/`why` keep
//! answering from snapshots; `heal` attempts the repair described at
//! [`ServingDb::heal`]. Sessions can be given a read timeout
//! ([`ServerOptions::read_timeout`]) after which an idle connection is
//! sent a final `err timeout …` line and closed — one wedged client
//! cannot pin a session thread forever. [`Client::request_with_retry`]
//! layers reconnect-and-retry with exponential backoff over the plain
//! [`Client::request`] for transient failures (degraded replies, torn
//! connections, timeouts).

use epilog_persist::{PersistError, ServeError, ServeStats, ServingDb, TxOp};
use epilog_syntax::parse;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerOptions {
    /// Per-session read timeout: a connection that stays silent this
    /// long is sent a final `err timeout …` line and closed. `None`
    /// (the default) waits forever.
    pub read_timeout: Option<Duration>,
}

/// One client connection's state: the shared database plus the
/// session's open transaction, if any.
struct Session<'a> {
    db: &'a ServingDb,
    txn: Option<Vec<TxOp>>,
}

/// What a protocol line asks the connection loop to do after replying.
enum Disposition {
    Continue,
    Close,
    ShutdownServer,
}

impl<'a> Session<'a> {
    fn new(db: &'a ServingDb) -> Session<'a> {
        Session { db, txn: None }
    }

    /// Answer one request line. The response is one or more complete
    /// lines without a trailing newline.
    fn handle(&mut self, line: &str) -> (String, Disposition) {
        let line = line.trim();
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        let reply = match verb {
            "" => Ok(String::new()),
            "ask" => self.ask(rest),
            "demo" => self.demo(rest),
            "why" => self.why(rest),
            "begin" => self.begin(),
            "assert" => self.op(rest, TxOp::Assert),
            "retract" => self.op(rest, TxOp::Retract),
            "commit" => self.commit(),
            "rollback" => self.rollback(),
            "constraint" => self.constraint(rest),
            "flush" => self.flush(),
            "heal" => self.heal(),
            "stats" => Ok(stats_line(self.db)),
            "quit" => return ("ok bye".into(), Disposition::Close),
            "shutdown" => return ("ok shutting-down".into(), Disposition::ShutdownServer),
            _ => Err(format!("unknown request {verb:?}")),
        };
        match reply {
            Ok(s) if s.is_empty() => ("ok".into(), Disposition::Continue),
            Ok(s) => (s, Disposition::Continue),
            Err(e) => (format!("err {e}"), Disposition::Continue),
        }
    }

    fn ask(&self, src: &str) -> Result<String, String> {
        let q = parse(src).map_err(|e| format!("parse: {e}"))?;
        let snap = self.db.snapshot();
        let verdict = match snap.ask(&q) {
            epilog_core::Answer::Yes => "yes",
            epilog_core::Answer::No => "no",
            epilog_core::Answer::Unknown => "unknown",
        };
        Ok(format!("ok {verdict} @{}", snap.lsn()))
    }

    fn demo(&self, src: &str) -> Result<String, String> {
        let q = parse(src).map_err(|e| format!("parse: {e}"))?;
        let snap = self.db.snapshot();
        let rows = snap.demo_all(&q).map_err(|e| e.to_string())?;
        let mut out = format!("ok rows {} @{}", rows.len(), snap.lsn());
        for row in rows {
            out.push_str("\nrow");
            for p in row {
                out.push(' ');
                out.push_str(&p.to_string());
            }
        }
        Ok(out)
    }

    fn why(&self, src: &str) -> Result<String, String> {
        let q = parse(src).map_err(|e| format!("parse: {e}"))?;
        let epilog_syntax::Formula::Atom(atom) = q else {
            return Err(format!("why needs a ground atom, got {q}"));
        };
        if !atom.is_ground() {
            return Err(format!("why needs a ground atom, got {atom}"));
        }
        let snap = self.db.snapshot();
        if !snap.provenance_enabled() {
            return Err("provenance is not enabled on this server".into());
        }
        match snap.why(&atom) {
            Some(proof) => {
                let lines = proof.render();
                let mut out = format!("ok why {} @{}", lines.len(), snap.lsn());
                for l in lines {
                    out.push_str("\nrow ");
                    out.push_str(&l);
                }
                Ok(out)
            }
            None => Ok(format!("ok why none @{}", snap.lsn())),
        }
    }

    fn begin(&mut self) -> Result<String, String> {
        if self.txn.is_some() {
            return Err("transaction already open".into());
        }
        self.txn = Some(Vec::new());
        Ok("ok begin".into())
    }

    fn op(
        &mut self,
        src: &str,
        wrap: impl Fn(epilog_syntax::Formula) -> TxOp,
    ) -> Result<String, String> {
        let w = parse(src).map_err(|e| format!("parse: {e}"))?;
        match &mut self.txn {
            Some(ops) => {
                ops.push(wrap(w));
                Ok(format!("ok queued {}", ops.len()))
            }
            None => commit_ops(self.db, vec![wrap(w)]),
        }
    }

    fn commit(&mut self) -> Result<String, String> {
        let ops = self.txn.take().ok_or("no open transaction")?;
        commit_ops(self.db, ops)
    }

    fn rollback(&mut self) -> Result<String, String> {
        let ops = self.txn.take().ok_or("no open transaction")?;
        Ok(format!("ok rollback {}", ops.len()))
    }

    fn constraint(&self, src: &str) -> Result<String, String> {
        let ic = parse(src).map_err(|e| format!("parse: {e}"))?;
        match self.db.add_constraint(ic) {
            Ok(lsn) => Ok(format!("ok constraint @{lsn}")),
            Err(ServeError::Db(e, lsn)) => Err(format!("rejected: {e} @{lsn}")),
            Err(e) => Err(format!("rejected: {e}")),
        }
    }

    fn flush(&self) -> Result<String, String> {
        self.db
            .flush()
            .map(|lsn| format!("ok flushed @{lsn}"))
            .map_err(|e| e.to_string())
    }

    fn heal(&self) -> Result<String, String> {
        self.db
            .heal()
            .map(|lsn| format!("ok healed @{lsn}"))
            .map_err(|e| format!("heal failed: {e}"))
    }
}

/// Replies a retry (after a heal, a reconnect, or plain patience) can
/// turn into success; everything else is definitive.
fn is_transient_reply(reply: &str) -> bool {
    reply.starts_with("err degraded")
        || reply.starts_with("err io error")
        || reply.starts_with("err timeout")
}

fn commit_ops(db: &ServingDb, ops: Vec<TxOp>) -> Result<String, String> {
    match db.commit_wait(ops) {
        Ok(r) => Ok(format!(
            "ok committed @{} +{} -{}",
            r.lsn, r.report.asserted, r.report.retracted
        )),
        Err(ServeError::Db(e, lsn)) => Err(format!("rejected: {e} @{lsn}")),
        Err(e) => Err(e.to_string()),
    }
}

fn stats_line(db: &ServingDb) -> String {
    let s = db.stats();
    let snap = db.snapshot();
    let (prov_atoms, prov_supports) = snap.provenance_size();
    format!(
        "ok stats commits={} rejected={} batches={} fsyncs={} plan_recosts={} prov_atoms={} prov_supports={} io_errors={} heals={} degraded={}",
        s.commits,
        s.rejected,
        s.batches,
        s.fsyncs,
        snap.plan_recosts(),
        prov_atoms,
        prov_supports,
        s.io_errors,
        s.heals,
        s.degraded
    )
}

struct Inner {
    db: ServingDb,
    opts: ServerOptions,
    stop: AtomicBool,
    // Set when a session sends `shutdown`; Server::wait blocks on it.
    wanted: Mutex<bool>,
    bell: Condvar,
    sessions: Mutex<Vec<(JoinHandle<()>, TcpStream)>>,
}

impl Inner {
    fn request_shutdown(&self) {
        *self.wanted.lock().unwrap() = true;
        self.bell.notify_all();
    }
}

/// A running TCP server over one [`ServingDb`].
///
/// Start with [`Server::start`], connect with [`Client`] (or any
/// line-oriented TCP client), stop with [`Server::shutdown`] — which
/// drains the commit queue before returning, so an `ok committed`
/// answered to any client is on disk.
pub struct Server {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serve `db` until [`Server::shutdown`].
    pub fn start(db: ServingDb, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Server::start_with(db, addr, ServerOptions::default())
    }

    /// [`Server::start`] with explicit [`ServerOptions`].
    pub fn start_with(
        db: ServingDb,
        addr: impl ToSocketAddrs,
        opts: ServerOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            db,
            opts,
            stop: AtomicBool::new(false),
            wanted: Mutex::new(false),
            bell: Condvar::new(),
            sessions: Mutex::new(Vec::new()),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            threadpool::spawn_named("epilog-accept", move || accept_loop(&listener, &inner))
        };
        Ok(Server {
            inner,
            accept: Some(accept),
            addr,
        })
    }

    /// The bound address (with the OS-chosen port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served database's writer counters.
    pub fn stats(&self) -> ServeStats {
        self.inner.db.stats()
    }

    /// Block until some client sends `shutdown` (the binary's main
    /// thread parks here).
    pub fn wait_for_shutdown_request(&self) {
        let mut wanted = self.inner.wanted.lock().unwrap();
        while !*wanted {
            wanted = self.inner.bell.wait(wanted).unwrap();
        }
    }

    /// Graceful shutdown: stop accepting, close live sessions, join
    /// every thread, then drain and sync the commit queue. Returns the
    /// final writer counters.
    pub fn shutdown(mut self) -> Result<ServeStats, PersistError> {
        let inner = &self.inner;
        inner.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let sessions = std::mem::take(&mut *inner.sessions.lock().unwrap());
        for (handle, stream) in sessions {
            let _ = stream.shutdown(Shutdown::Both);
            let _ = handle.join();
        }
        let stats = inner.db.stats();
        let inner = Arc::try_unwrap(self.inner)
            .unwrap_or_else(|_| unreachable!("all session threads joined; no Inner clones remain"));
        inner.db.shutdown()?;
        Ok(stats)
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(peer) = stream.try_clone() else {
            continue;
        };
        let handle = {
            let inner = Arc::clone(inner);
            threadpool::spawn_named("epilog-session", move || session_loop(stream, &inner))
        };
        let mut sessions = inner.sessions.lock().unwrap();
        // Reap sessions whose threads already exited (clients that quit
        // or timed out), so a long-lived server's list stays bounded by
        // its *live* connections.
        sessions.retain(|(h, _)| !h.is_finished());
        sessions.push((handle, peer));
    }
}

fn session_loop(stream: TcpStream, inner: &Inner) {
    // Readers and the writer queue are shared through `inner`; the
    // transaction buffer is this session's alone.
    let mut session = Session::new(&inner.db);
    let _ = stream.set_read_timeout(inner.opts.read_timeout);
    let Ok(read) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read);
    let mut write = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // The configured idle timeout expired: tell the client
                // why (best effort) and free the session thread.
                let _ = write.write_all(b"err timeout: session idle too long, closing\n");
                let _ = write.flush();
                break;
            }
            Err(_) => break,
            Ok(_) => {}
        }
        let (reply, disposition) = session.handle(&line);
        if write.write_all(reply.as_bytes()).is_err() || write.write_all(b"\n").is_err() {
            break;
        }
        let _ = write.flush();
        match disposition {
            Disposition::Continue => {}
            Disposition::Close => break,
            Disposition::ShutdownServer => {
                inner.request_shutdown();
                break;
            }
        }
    }
    // Close the connection outright: the accept loop holds a clone of
    // this stream (for shutdown), so merely dropping ours would leave
    // the socket open and a well-behaved client blocked on a session
    // that no longer exists.
    let _ = write.shutdown(Shutdown::Both);
}

/// How [`Client::request_with_retry`] paces itself: up to `attempts`
/// tries, sleeping `base_delay` before the first retry and doubling up
/// to `max_delay` between later ones.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total tries, the initial one included. Clamped to at least 1.
    pub attempts: u32,
    /// Sleep before the first retry.
    pub base_delay: Duration,
    /// Cap on the (doubling) sleep between retries.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(640),
        }
    }
}

/// A minimal blocking client for the line protocol — what the example,
/// the soak test, and scripted sessions use.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let addr = stream.peer_addr()?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            addr,
        })
    }

    /// Send one request line and read the one-line response.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// [`Client::request`] with reconnect-and-retry under `policy`.
    ///
    /// Retries on transport errors (reconnecting first — the server may
    /// have closed an idle session, or a previous response may have
    /// been lost mid-line) and on transient protocol replies:
    /// `err degraded …`, `err io error …`, and `err timeout …`. A
    /// definitive reply (`ok …`, `err rejected: …`, parse errors) is
    /// returned as soon as it arrives. When every attempt failed
    /// transiently, the last protocol reply is returned as `Ok` (it
    /// *is* the server's answer) and the last transport error as `Err`.
    ///
    /// Retrying a commit after a *lost response* can double-apply it;
    /// epilog transactions are idempotent at the sentence level
    /// (re-asserting an asserted sentence is a no-op), so this is safe
    /// for this protocol, though receipts may report `+0`.
    pub fn request_with_retry(&mut self, line: &str, policy: RetryPolicy) -> io::Result<String> {
        let mut delay = policy.base_delay;
        let mut last_reply: Option<String> = None;
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(policy.max_delay);
            }
            match self.request(line) {
                Ok(reply) if is_transient_reply(&reply) => {
                    last_reply = Some(reply);
                    last_err = None;
                }
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    last_err = Some(e);
                    last_reply = None;
                    if let Ok(fresh) = Client::connect(self.addr) {
                        *self = fresh;
                    }
                }
            }
        }
        match (last_reply, last_err) {
            (Some(reply), _) => Ok(reply),
            (None, Some(e)) => Err(e),
            (None, None) => unreachable!("at least one attempt always runs"),
        }
    }

    /// Read one more response line (the `row` lines after a `demo`).
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// The address this client is (re)connected to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `demo` convenience: returns the answer rows as vectors of
    /// parameter names.
    pub fn demo(&mut self, sentence: &str) -> io::Result<Vec<Vec<String>>> {
        let head = self.request(&format!("demo {sentence}"))?;
        let n: usize = head
            .strip_prefix("ok rows ")
            .and_then(|r| r.split(' ').next())
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, head.clone()))?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let line = self.read_line()?;
            let row = line
                .strip_prefix("row")
                .unwrap_or(&line)
                .split_whitespace()
                .map(str::to_string)
                .collect();
            rows.push(row);
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::Theory;
    use std::path::PathBuf;

    fn dir() -> PathBuf {
        use std::sync::atomic::AtomicU32;
        static N: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "epilog-server-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn serve(d: &std::path::Path) -> Server {
        let theory = Theory::from_text("forall x. emp(x) -> person(x)").unwrap();
        let db = ServingDb::create(d, theory, Default::default()).unwrap();
        Server::start(db, "127.0.0.1:0").unwrap()
    }

    #[test]
    fn protocol_round_trip_over_tcp() {
        let d = dir();
        let server = serve(&d);
        let mut c = Client::connect(server.local_addr()).unwrap();

        assert_eq!(
            c.request("constraint forall x. K emp(x) -> exists y. K ss(x, y)")
                .unwrap(),
            "ok constraint @1"
        );
        assert_eq!(c.request("ask K person(Mary)").unwrap(), "ok no @1");

        // A transaction: out-of-order ops are fine, validated at commit.
        assert_eq!(c.request("begin").unwrap(), "ok begin");
        assert_eq!(c.request("assert emp(Mary)").unwrap(), "ok queued 1");
        assert_eq!(c.request("assert ss(Mary, n1)").unwrap(), "ok queued 2");
        assert_eq!(c.request("commit").unwrap(), "ok committed @2 +2 -0");
        assert_eq!(c.request("ask K person(Mary)").unwrap(), "ok yes @2");

        // Constraint rejection: no ss number for Joe.
        let r = c.request("assert emp(Joe)").unwrap();
        assert!(r.starts_with("err rejected:"), "got {r}");
        assert_eq!(c.request("ask K emp(Joe)").unwrap(), "ok no @2");

        // demo returns the known employees.
        let rows = c.demo("exists x. K emp(x)").unwrap();
        assert_eq!(rows, vec![Vec::<String>::new()]);
        let rows = c.demo("K emp(x)").unwrap();
        assert_eq!(rows, vec![vec!["Mary".to_string()]]);

        // Parse errors and unknown verbs answer err without closing.
        assert!(c.request("ask ((").unwrap().starts_with("err parse:"));
        assert!(c.request("frobnicate").unwrap().starts_with("err unknown"));
        assert_eq!(c.request("rollback").unwrap(), "err no open transaction");

        let stats = c.request("stats").unwrap();
        assert!(stats.starts_with("ok stats commits=1 "), "got {stats}");
        assert_eq!(c.request("quit").unwrap(), "ok bye");

        // Two clients see the same committed state.
        let mut c2 = Client::connect(server.local_addr()).unwrap();
        assert_eq!(c2.request("ask K person(Mary)").unwrap(), "ok yes @2");

        let stats = server.shutdown().unwrap();
        assert_eq!(stats.commits, 1);
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn why_and_stamped_rejections_over_tcp() {
        let d = dir();
        let theory = Theory::from_text(
            "edge(a, b)\nedge(b, c)\nforall x. forall y. edge(x, y) -> path(x, y)\n\
             forall x. forall y. forall z. edge(x, y) & path(y, z) -> path(x, z)",
        )
        .unwrap();
        let opts = epilog_persist::ServeOptions {
            provenance: true,
            ..Default::default()
        };
        let db = ServingDb::create(&d, theory, opts).unwrap();
        let server = Server::start(db, "127.0.0.1:0").unwrap();
        let mut c = Client::connect(server.local_addr()).unwrap();

        let head = c.request("why path(a, c)").unwrap();
        assert!(head.starts_with("ok why "), "got {head}");
        let n: usize = head
            .strip_prefix("ok why ")
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(n >= 3, "conclusion plus two premises at least, got {n}");
        for _ in 0..n {
            let row = c.read_line().unwrap();
            assert!(row.starts_with("row "), "got {row}");
        }

        assert_eq!(c.request("why path(c, a)").unwrap(), "ok why none @0");
        assert!(c.request("why K edge(a, b)").unwrap().starts_with("err"));

        // Rejections carry the violated constraint, its ground
        // witnesses, and the LSN of the state they were checked on.
        assert_eq!(
            c.request("constraint forall x. ~K path(x, x)").unwrap(),
            "ok constraint @1"
        );
        let r = c.request("assert edge(c, a)").unwrap();
        assert!(r.starts_with("err rejected:"), "got {r}");
        assert!(r.ends_with("@1"), "got {r}");
        assert!(r.contains("witnesses"), "got {r}");

        let stats = c.request("stats").unwrap();
        assert!(
            stats.contains("plan_recosts=") && stats.contains("prov_atoms="),
            "got {stats}"
        );
        server.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn idle_sessions_time_out_and_the_server_keeps_serving() {
        let d = dir();
        let theory = Theory::from_text("p(a)").unwrap();
        let db = ServingDb::create(&d, theory, Default::default()).unwrap();
        let opts = ServerOptions {
            read_timeout: Some(Duration::from_millis(60)),
        };
        let server = Server::start_with(db, "127.0.0.1:0", opts).unwrap();

        let mut idle = Client::connect(server.local_addr()).unwrap();
        assert_eq!(idle.request("ask K p(a)").unwrap(), "ok yes @0");
        // Stay silent past the timeout: the server sends a final err
        // line and closes the connection.
        let line = idle.read_line().unwrap();
        assert!(line.starts_with("err timeout"), "got {line}");
        assert!(idle.read_line().is_err(), "session closed after timeout");

        // The server is unharmed; fresh connections work.
        let mut c = Client::connect(server.local_addr()).unwrap();
        assert_eq!(c.request("ask K p(a)").unwrap(), "ok yes @0");

        // request_with_retry rides over the closed session transparently.
        let mut retry = Client::connect(server.local_addr()).unwrap();
        assert_eq!(retry.request("ask K p(a)").unwrap(), "ok yes @0");
        std::thread::sleep(Duration::from_millis(120)); // let it die
        let reply = retry
            .request_with_retry("ask K p(a)", RetryPolicy::default())
            .unwrap();
        assert_eq!(reply, "ok yes @0", "reconnected and re-asked");

        server.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn degraded_server_stays_readable_heals_and_retries_succeed() {
        use epilog_persist::{DurableDb, FaultInjector, FsyncPolicy};

        let d = dir();
        let theory = Theory::from_text("forall x. p(x) -> q(x)").unwrap();
        let mut durable = DurableDb::create(&d, theory, FsyncPolicy::Never).unwrap();
        let inj = Arc::new(FaultInjector::new(77));
        durable.set_fault_injector(Some(Arc::clone(&inj)));
        let db = ServingDb::start(durable, Default::default());
        let server = Server::start(db, "127.0.0.1:0").unwrap();
        let mut c = Client::connect(server.local_addr()).unwrap();

        assert_eq!(c.request("assert p(a)").unwrap(), "ok committed @1 +1 -0");

        // Break the disk: the in-flight commit fails with an io error
        // and the database degrades to read-only.
        inj.set_sync_rate(1, 1);
        let r = c.request("assert p(b)").unwrap();
        assert!(r.starts_with("err io error"), "got {r}");
        let r = c.request("assert p(c)").unwrap();
        assert!(r.starts_with("err degraded"), "got {r}");
        assert_eq!(c.request("ask K q(a)").unwrap(), "ok yes @1");
        let stats = c.request("stats").unwrap();
        assert!(stats.contains("degraded=true"), "got {stats}");

        // Healing against a still-broken disk fails and stays retryable.
        let r = c.request("heal").unwrap();
        assert!(r.starts_with("err heal failed"), "got {r}");

        // Fix the disk and heal from a second session while the first
        // keeps retrying its write with backoff.
        let addr = server.local_addr();
        let fixer = {
            let inj = Arc::clone(&inj);
            threadpool::spawn_named("epilog-test-fixer", move || {
                std::thread::sleep(Duration::from_millis(80));
                inj.disarm();
                let mut c2 = Client::connect(addr).unwrap();
                assert_eq!(c2.request("heal").unwrap(), "ok healed @1");
            })
        };
        let policy = RetryPolicy {
            attempts: 50,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(100),
        };
        let reply = c.request_with_retry("assert p(b)", policy).unwrap();
        assert_eq!(reply, "ok committed @2 +1 -0");
        fixer.join().unwrap();

        let stats = c.request("stats").unwrap();
        assert!(
            stats.contains("degraded=false") && stats.contains("heals=1"),
            "got {stats}"
        );
        assert_eq!(c.request("ask K q(b)").unwrap(), "ok yes @2");
        server.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn shutdown_request_unparks_the_waiter() {
        let d = dir();
        let server = serve(&d);
        let addr = server.local_addr();
        let poker = threadpool::spawn_named("epilog-test-poker", move || {
            let mut c = Client::connect(addr).unwrap();
            assert_eq!(c.request("shutdown").unwrap(), "ok shutting-down");
        });
        server.wait_for_shutdown_request();
        poker.join().unwrap();
        server.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }
}
