//! # epilog-core — the epistemic query engine of Reiter's
//! *"What Should a Database Know?"*
//!
//! A database `Σ` is a set of FOPCE sentences (truths about the world);
//! queries and integrity constraints are KFOPCE formulas (which may also
//! address what the database *knows*). This crate implements the paper's
//! machinery end to end:
//!
//! * [`mod@demo`] — the Prolog-style meta-evaluator of §5.1, sound for
//!   *admissible* queries (Theorem 5.1), with negation-as-failure, lazy
//!   backtracking, and the all-answers iteration of §6.1.1;
//! * [`mod@ask`] — a Levesque-style reduction of arbitrary KFOPCE queries to
//!   first-order entailment (the comparison point the paper cites in
//!   §5.1), giving three-valued [`Answer`]s;
//! * [`constraints`] — integrity constraints as epistemic sentences
//!   (Definition 3.5), alongside the four classical definitions 3.1–3.4
//!   the paper argues against;
//! * [`closure`] — `Closure(Σ)` and closed-world query evaluation: the
//!   collapse of `K` (Theorem 7.1), the equivalence of the classical
//!   definitions under CWA (Theorem 7.2), and CWA evaluation through
//!   `demo(ℛ(w), Σ)` *without computing the closure* (Theorem 7.3);
//! * [`optimize`] — query/constraint optimization licensed by
//!   Corollaries 4.1/4.2: KFOPCE-equivalence checking over bounded
//!   structures and constraint-driven conjunct elimination;
//! * [`mod@engine`] — routing through the bottom-up Datalog engine: when
//!   the database is a definite program, its least model (computed by the
//!   compiled semi-naive fixpoint) answers every ground-atom entailment
//!   question without SAT — accelerating `demo`, `ask`, `closure` and the
//!   incremental checker alike;
//! * [`mvcc`] — snapshot publication for concurrent serving: immutable
//!   [`CommittedState`]s behind an atomically swappable [`StateCell`],
//!   so readers query a pinned state while the single writer prepares
//!   the next one;
//! * [`mod@transaction`] — the update surface: batched [`Transaction`]s
//!   validated against compiled constraints and applied atomically, with
//!   the attached least model maintained incrementally (the §8
//!   incremental-integrity discussion made executable);
//! * [`EpistemicDb`] — the facade tying the pieces together.

pub mod ask;
pub mod closure;
pub mod constraints;
pub mod db;
pub mod demo;
pub mod engine;
pub mod incremental;
pub mod instances;
pub mod mvcc;
pub mod optimize;
pub mod transaction;

pub use ask::ask;
pub use closure::ClosedDb;
pub use constraints::{ic_satisfaction, IcDefinition, IcReport};
pub use db::{DbError, EpistemicDb, Rejection};
pub use demo::{all_answers, demo, demo_sentence, DemoOutcome, DemoStream};
pub use engine::{definite_model, definite_program, prover_for};
pub use epilog_datalog::{ProofTree, SupportTable};
pub use epilog_semantics::Answer;
pub use incremental::{CheckStats, CompiledConstraint, IncrementalChecker, RuleGraph};
pub use instances::{admissible_wrt_f_sigma, instances, theorem_62_applies};
pub use mvcc::{CommittedState, ReadHandle, StateCell};
pub use optimize::{eliminate_redundant_conjuncts, valid_kfopce};
pub use transaction::{CommitReport, ModelUpdate, PreparedCommit, Transaction};
