//! Compiled rule plans for bottom-up evaluation.
//!
//! A [`RulePlan`] is compiled once per rule before the fixpoint starts and
//! reused every round:
//!
//! * the rule's variables are numbered into dense slots, so a binding
//!   environment is a flat `Vec<Option<Param>>` instead of a cloned
//!   `HashMap<Var, Param>` per candidate match;
//! * the positive body literals are greedily reordered by bound-column
//!   count, with selection shapes precomputed per step
//!   ([`epilog_storage::ConjunctionPlan`]);
//! * one plan variant exists per positive literal, designating it as the
//!   **delta position** for semi-naive rounds, plus a full variant used by
//!   naive evaluation and the first round of each stratum;
//! * the head and the negated literals are compiled to
//!   [`AtomTemplate`]s grounded directly from the slot environment.

use crate::program::Rule;
use epilog_storage::{AtomTemplate, ConjunctionPlan, Database, SlotMap};
use epilog_syntax::formula::Atom;
use epilog_syntax::Pred;

/// A rule compiled for bottom-up evaluation.
#[derive(Debug, Clone)]
pub struct RulePlan {
    /// The head, grounded from the slot environment on each derivation.
    pub head: AtomTemplate,
    /// The negated body literals (checked against the total database once
    /// the positive join completes; safety guarantees they ground).
    pub negatives: Vec<AtomTemplate>,
    /// The variable numbering shared by every variant.
    pub slots: SlotMap,
    /// Join over all positive literals against the total database.
    pub full: ConjunctionPlan,
    /// Per positive literal: its predicate (for empty-delta skipping) and
    /// the variant joining that literal against the delta first.
    pub variants: Vec<(Pred, ConjunctionPlan)>,
}

impl RulePlan {
    /// Compile a rule.
    pub fn compile(rule: &Rule) -> RulePlan {
        let mut slots = SlotMap::new();
        let positives: Vec<Atom> = rule
            .body
            .iter()
            .filter(|l| l.positive)
            .map(|l| l.atom.clone())
            .collect();
        let full = ConjunctionPlan::compile(&positives, &mut slots, None);
        let variants = (0..positives.len())
            .map(|d| {
                (
                    positives[d].pred,
                    ConjunctionPlan::compile(&positives, &mut slots, Some(d)),
                )
            })
            .collect();
        let negatives = rule
            .body
            .iter()
            .filter(|l| !l.positive)
            .map(|l| AtomTemplate::compile(&l.atom, &mut slots))
            .collect();
        let head = AtomTemplate::compile(&rule.head, &mut slots);
        RulePlan {
            head,
            negatives,
            slots,
            full,
            variants,
        }
    }

    /// Warm up the total-side indexes every variant probes.
    pub fn ensure_total_indexes(&self, total: &mut Database) {
        self.full.ensure_indexes(total, None);
        for (_, v) in &self.variants {
            v.ensure_indexes(total, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use epilog_storage::PatTerm;
    use epilog_syntax::Var;

    fn plan_of(src: &str) -> RulePlan {
        let p = Program::from_text(src).unwrap();
        RulePlan::compile(&p.rules[0])
    }

    #[test]
    fn slots_are_dense_and_shared() {
        let plan = plan_of("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)");
        assert_eq!(plan.slots.len(), 3);
        // The head reuses the body's slots.
        let x = plan.slots.get(Var::new("x")).unwrap();
        let z = plan.slots.get(Var::new("z")).unwrap();
        assert_eq!(plan.head.args, vec![PatTerm::Slot(x), PatTerm::Slot(z)]);
    }

    #[test]
    fn one_variant_per_positive_literal() {
        let plan = plan_of("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)");
        assert_eq!(plan.variants.len(), 2);
        assert_eq!(plan.variants[0].0, Pred::new("e", 2));
        assert_eq!(plan.variants[1].0, Pred::new("t", 2));
        for (_, v) in &plan.variants {
            assert!(v.steps()[0].from_delta, "delta literal joins first");
            assert!(v.steps()[1..].iter().all(|s| !s.from_delta));
        }
    }

    #[test]
    fn negatives_compiled_not_joined() {
        let plan = plan_of("forall x, y. node(x) & node(y) & ~e(x, y) -> sep(x, y)");
        assert_eq!(plan.full.steps().len(), 2);
        assert_eq!(plan.negatives.len(), 1);
        assert_eq!(plan.negatives[0].pred, Pred::new("e", 2));
        assert_eq!(plan.variants.len(), 2);
    }

    #[test]
    fn body_less_rule_has_no_variants() {
        let p = Program::from_text("forall x. p(x) -> q(x)").unwrap();
        // Grab a fact-like rule by constructing one directly.
        let rule = Rule {
            head: p.rules[0].head.clone(),
            body: vec![],
        };
        // An unsafe rule on its own, but plan compilation is shape-only.
        let plan = RulePlan::compile(&rule);
        assert!(plan.variants.is_empty());
        assert!(plan.full.steps().is_empty());
    }
}
