pub mod workloads;
