//! Closed worlds: Section 7 end to end.
//!
//! * Theorem 7.1 — under `Closure(Σ)` the `K` operator evaporates; the
//!   database always "knows whether" (Example 7.1).
//! * Example 7.2 — circumscription and the GCWA do *not* collapse `K`.
//! * Theorem 7.3 / Example 7.3 — closed-world evaluation by running
//!   `demo` on the modalized query `ℛ(w)` against the *open* database.
//! * The relational-database special case: a set of ground atoms under
//!   CWA behaves exactly like a classical relational instance.
//!
//! Run with: `cargo run --example closed_world`

use epilog::core::closure::{closure_theory, cwa_demo};
use epilog::prelude::*;
use epilog::semantics::{minimal_worlds, ModelSet};
use epilog::syntax::{modalize, strip_k, Pred};

fn main() {
    // ----- Theorem 7.1: K evaporates under CWA ---------------------------
    println!("== Theorem 7.1: the closed-world collapse of K ==\n");
    let db = EpistemicDb::from_text("p(a)\np(b)\nq(a)").unwrap();
    let closed = db.closed();
    let query = parse("forall x. K p(x) | K ~p(x)").unwrap();
    println!("  open   ask({query})  -> {}", db.ask(&query));
    println!("  closed ask({query})  -> {}", closed.ask(&query));
    println!(
        "  closed ask(stripped: {}) -> {}\n",
        strip_k(&query),
        closed.ask(&strip_k(&query))
    );
    assert_eq!(closed.ask(&query), closed.ask(&strip_k(&query)));

    // ----- Example 7.2: Circ/GCWA do NOT collapse K ----------------------
    println!("== Example 7.2: circumscription keeps K meaningful ==\n");
    let disj = Theory::from_text("p | q").unwrap();
    let ms = ModelSet::models(
        &disj,
        &[Param::new("c")],
        &[Pred::new("p", 0), Pred::new("q", 0)],
    );
    let circ = minimal_worlds(&ms);
    let notkp = parse("~K p").unwrap();
    let notp = parse("~p").unwrap();
    println!(
        "  Circ({{p | q}}) has {} minimal models",
        circ.worlds().len()
    );
    println!("  Circ ⊨ ~K p ?  {}", circ.certain(&notkp));
    println!(
        "  Circ ⊨ ~p   ?  {}   <- K genuinely matters here\n",
        circ.certain(&notp)
    );
    assert!(circ.certain(&notkp));
    assert!(!circ.certain(&notp));
    // Whereas Closure({p ∨ q}) is outright unsatisfiable:
    let pq = EpistemicDb::from_text("p | q").unwrap();
    println!(
        "  Closure({{p | q}}) satisfiable? {}  (the classic CWA failure)\n",
        pq.closed().satisfiable()
    );

    // ----- Theorem 7.3 / Example 7.3: demo(ℛ(w)) -------------------------
    println!("== Example 7.3: CWA evaluation via demo(R(w)) ==\n");
    let graph = EpistemicDb::from_text("q(a)\nq(b)\nq(c)\nr(a, b)\nr(b, c)").unwrap();
    let w = parse("q(x) & ~(exists y. r(x, y) & q(y))").unwrap();
    println!("  query w       = {w}");
    println!("  modalized R(w) = {}", modalize(&w));
    let via_demo: Vec<String> = cwa_demo(graph.prover(), &w)
        .unwrap()
        .map(|t| t[0].name())
        .collect();
    println!("  demo(R(w), Σ) answers -> {via_demo:?}");
    let via_closure: Vec<String> = graph
        .closed()
        .answers(&w)
        .iter()
        .map(|t| t[0].name())
        .collect();
    println!("  Closure(Σ) answers     -> {via_closure:?}");
    assert_eq!(via_demo, via_closure);

    // ----- Relational databases --------------------------------------------
    println!("\n== Relational instance under CWA ==\n");
    let rel = EpistemicDb::from_text("Emp(Mary, Sales)\nEmp(Sue, Eng)\nMgr(Sales, Ann)").unwrap();
    let closed = rel.closed();
    assert!(closed.satisfiable());
    for q in [
        "Emp(Mary, Sales)",
        "Emp(Mary, Eng)",
        "exists x. Emp(x, Eng)",
        "forall x, y. Emp(x, y) -> exists z. Mgr(y, z)",
    ] {
        println!("  {q:<46} -> {}", closed.ask(&parse(q).unwrap()));
    }

    // The explicit finitely-axiomatized closure agrees.
    let explicit = Prover::new(closure_theory(rel.prover()));
    assert!(explicit.entails(&parse("~Emp(Mary, Eng)").unwrap()));
    println!("\n  explicit Closure(Σ) entails ~Emp(Mary, Eng): ok");
}
