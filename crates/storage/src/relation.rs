//! Relations: ordered sets of fixed-arity tuples with lazy hash indexes.

use crate::Tuple;
use epilog_syntax::Param;
use std::collections::{BTreeSet, HashMap};

/// A selection pattern: per column, either a required parameter or a
/// wildcard.
pub type Selection = Vec<Option<Param>>;

/// A relation instance: a set of tuples of a fixed arity.
///
/// Tuples are kept in a `BTreeSet` for deterministic iteration (important
/// for the reproducibility of every experiment), with per-column hash
/// indexes built lazily the first time a column is used for selection and
/// invalidated on mutation.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
    /// `indexes[c]` maps a parameter to the tuples whose column `c` holds
    /// it. Rebuilt lazily; `None` when stale or never built.
    indexes: Vec<Option<HashMap<Param, Vec<Tuple>>>>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: BTreeSet::new(),
            indexes: vec![None; arity],
        }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple's length differs from the relation's arity.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.len(), self.arity, "tuple arity mismatch");
        let fresh = self.tuples.insert(t);
        if fresh {
            self.invalidate();
        }
        fresh
    }

    /// Remove a tuple; returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let removed = self.tuples.remove(t);
        if removed {
            self.invalidate();
        }
        removed
    }

    /// Whether the exact tuple is present.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterate over all tuples in deterministic (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// All tuples matching a partial binding pattern, in deterministic
    /// order.
    ///
    /// Uses the index of the first bound column when one exists (building
    /// it if needed), then filters residually; with no bound column this is
    /// a full scan.
    pub fn select(&mut self, pattern: &Selection) -> Vec<Tuple> {
        assert_eq!(pattern.len(), self.arity, "selection arity mismatch");
        let first_bound = pattern.iter().position(Option::is_some);
        match first_bound {
            None => self.tuples.iter().cloned().collect(),
            Some(c) => {
                self.build_index(c);
                let key = pattern[c].expect("position() found a bound column");
                let index = self.indexes[c].as_ref().expect("just built");
                let candidates = index.get(&key).map(Vec::as_slice).unwrap_or(&[]);
                candidates
                    .iter()
                    .filter(|t| Self::matches(t, pattern))
                    .cloned()
                    .collect()
            }
        }
    }

    /// Read-only variant of [`Relation::select`]: no index is built, the
    /// scan is residual. Useful when the relation is shared immutably.
    pub fn select_scan(&self, pattern: &Selection) -> Vec<Tuple> {
        assert_eq!(pattern.len(), self.arity, "selection arity mismatch");
        self.tuples
            .iter()
            .filter(|t| Self::matches(t, pattern))
            .cloned()
            .collect()
    }

    fn matches(t: &Tuple, pattern: &Selection) -> bool {
        t.iter()
            .zip(pattern)
            .all(|(v, p)| p.is_none_or(|q| q == *v))
    }

    fn build_index(&mut self, c: usize) {
        if self.indexes[c].is_some() {
            return;
        }
        let mut idx: HashMap<Param, Vec<Tuple>> = HashMap::new();
        for t in &self.tuples {
            idx.entry(t[c]).or_default().push(t.clone());
        }
        self.indexes[c] = Some(idx);
    }

    fn invalidate(&mut self) {
        for i in &mut self.indexes {
            *i = None;
        }
    }

    /// Set-union with another relation of the same arity; returns the
    /// number of new tuples.
    pub fn union_with(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity, "relation arity mismatch");
        let before = self.len();
        for t in other.iter() {
            self.tuples.insert(t.clone());
        }
        if self.len() != before {
            self.invalidate();
        }
        self.len() - before
    }

    /// The set of parameters appearing anywhere in the relation.
    pub fn params(&self) -> BTreeSet<Param> {
        self.tuples.iter().flatten().copied().collect()
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl FromIterator<Tuple> for Relation {
    /// Build a relation from tuples; the arity is taken from the first
    /// tuple (empty input yields a 0-ary relation).
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map(Vec::len).unwrap_or(0);
        let mut r = Relation::new(arity);
        for t in it {
            r.insert(t);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: &str) -> Param {
        Param::new(n)
    }

    fn rel() -> Relation {
        let mut r = Relation::new(2);
        r.insert(vec![p("a"), p("b")]);
        r.insert(vec![p("a"), p("c")]);
        r.insert(vec![p("d"), p("b")]);
        r
    }

    #[test]
    fn insert_and_contains() {
        let mut r = rel();
        assert_eq!(r.len(), 3);
        assert!(r.contains(&vec![p("a"), p("b")]));
        assert!(
            !r.insert(vec![p("a"), p("b")]),
            "duplicate insert returns false"
        );
        assert_eq!(r.len(), 3);
        assert!(r.remove(&vec![p("a"), p("b")]));
        assert!(!r.contains(&vec![p("a"), p("b")]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_enforced() {
        let mut r = Relation::new(2);
        r.insert(vec![p("a")]);
    }

    #[test]
    fn select_with_index() {
        let mut r = rel();
        let got = r.select(&vec![Some(p("a")), None]);
        assert_eq!(got.len(), 2);
        let got = r.select(&vec![None, Some(p("b"))]);
        assert_eq!(got.len(), 2);
        let got = r.select(&vec![Some(p("a")), Some(p("c"))]);
        assert_eq!(got, vec![vec![p("a"), p("c")]]);
        let got = r.select(&vec![None, None]);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn select_scan_matches_select() {
        let mut r = rel();
        for pattern in [
            vec![Some(p("a")), None],
            vec![None, Some(p("b"))],
            vec![None, None],
            vec![Some(p("zz")), None],
        ] {
            assert_eq!(r.select(&pattern), r.select_scan(&pattern));
        }
    }

    #[test]
    fn index_invalidated_on_mutation() {
        let mut r = rel();
        let _ = r.select(&vec![Some(p("a")), None]); // build index
        r.insert(vec![p("a"), p("z")]);
        let got = r.select(&vec![Some(p("a")), None]);
        assert_eq!(got.len(), 3, "index must see the new tuple");
    }

    #[test]
    fn union_counts_new() {
        let mut r = rel();
        let mut other = Relation::new(2);
        other.insert(vec![p("a"), p("b")]); // dup
        other.insert(vec![p("x"), p("y")]); // new
        assert_eq!(r.union_with(&other), 1);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn params_collected() {
        let r = rel();
        let names: Vec<String> = r.params().iter().map(|q| q.name()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn deterministic_iteration() {
        let r = rel();
        let order1: Vec<Tuple> = r.iter().cloned().collect();
        let r2 = rel();
        let order2: Vec<Tuple> = r2.iter().cloned().collect();
        assert_eq!(order1, order2);
    }

    #[test]
    fn from_iterator() {
        let r: Relation = vec![vec![p("a")], vec![p("b")]].into_iter().collect();
        assert_eq!(r.arity(), 1);
        assert_eq!(r.len(), 2);
    }
}
