//! Bottom-up evaluation: naive and semi-naive fixpoints over stratified
//! programs, executing compiled [`RulePlan`]s.
//!
//! Every rule is compiled **once** before the fixpoint starts (dense
//! variable slots, greedily reordered literals, precomputed selection
//! shapes — see [`crate::plan`]), and the storage indexes the plans probe
//! are built once per stratum and maintained incrementally as facts are
//! inserted. Semi-naive rounds advance an explicit
//! [`DeltaDatabase`] stable/delta split: round 1 of a
//! stratum runs each rule's full plan, and every later round runs one plan
//! variant per positive literal whose predicate actually gained facts —
//! variants whose delta relation is empty are skipped without counting as
//! a firing.

use crate::plan::RulePlan;
use crate::program::{DatalogError, Program};
use crate::provenance::{ProvenanceSink, SupportTable};
use epilog_storage::{
    ConjunctionPlan, Database, DeltaDatabase, StepStrategy, Tuple, PAR_MIN_PROBE_OUTER,
};
use epilog_syntax::{Param, Pred};

/// Default minimum number of driving rows — the delta of a semi-naive
/// round, or the stable total seeding a full first round — before fanning
/// a round's firing jobs out across threads pays for the spawn and merge
/// overhead. Below it (one-row commit resumes, small strata) the round
/// runs sequentially at its current latency.
pub const PAR_MIN_FANOUT_ROWS: usize = 128;

/// Which join planner compiles the rule plans of an evaluation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlannerMode {
    /// The seed planner: literals ordered greedily by bound-column count,
    /// every step an index probe or a residual scan. Kept as the ablation
    /// baseline for the planner-differential property suite and the
    /// `f9_joins` bench.
    Greedy,
    /// Cost-based ordering from live relation cardinalities
    /// (EDB statistics), with hash build+probe steps for multi-column
    /// joins against large relations.
    #[default]
    CostBased,
}

/// Counters reported by an evaluation run (for the `f2_datalog`/
/// `f6_scaling`/`f9_joins` benches and for tests asserting that
/// semi-naive does strictly less work).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of executed join plans: one per rule per naive round (and
    /// per round 1 of each semi-naive stratum), one per nonempty-delta
    /// variant in later semi-naive rounds.
    pub rule_firings: u64,
    /// The subset of [`EvalStats::rule_firings`] that executed a **full**
    /// (non-delta) plan: every naive firing, and round 1 of each
    /// semi-naive stratum. A resumed fixpoint
    /// ([`Program::eval_incremental`]) reports 0 here — it only ever runs
    /// delta variants.
    pub full_firings: u64,
    /// Number of head atoms derived (including duplicates).
    pub derivations: u64,
    /// Number of fixpoint iterations across all strata.
    pub iterations: u64,
    /// Join steps executed as single-column index probes, counted once
    /// per step per firing.
    pub probe_steps: u64,
    /// Join steps executed as hash build+probe, counted once per step per
    /// firing.
    pub hash_steps: u64,
    /// Join steps executed as full/residual scans, counted once per step
    /// per firing.
    pub scan_steps: u64,
    /// Semi-naive delta variants **skipped** because their delta relation
    /// was empty. Disambiguates "the variant never ran" from "the variant
    /// ran and matched nothing": a firing with zero derivations still
    /// counts its steps above, a skipped variant counts here and nowhere
    /// else.
    pub variants_skipped: u64,
    /// Candidate tuples examined across all join steps: tuples pulled
    /// from scans and probed buckets (including ones residual filtering
    /// rejected), tuples read while building hash tables, and hash-bucket
    /// entries probed. The deterministic work-done measure the F9 report
    /// table compares planners by.
    pub rows_examined: u64,
    /// Rule plans compiled for this run. Zero on the cached-plan path
    /// ([`Program::eval_incremental_with`]) — the `CommitReport` evidence
    /// that ground-atom commits recompile nothing.
    pub plans_compiled: u64,
    /// DRed phase 1 ([`Program::eval_decremental_with`]): tuples the
    /// over-deletion fixpoint removed from the model — the retracted
    /// facts themselves plus everything transitively derivable from them.
    pub tuples_overdeleted: u64,
    /// DRed phase 3: over-deleted tuples put back because an alternative
    /// derivation (or extensional membership) still supports them.
    pub tuples_rederived: u64,
    /// DRed phase 3: support queries executed — one per over-deleted
    /// tuple per candidate rule head, until one succeeds. These run the
    /// prebound `RulePlan::support` plan, never a full firing.
    pub support_checks: u64,
    /// Provenance: novel [`Support`](crate::provenance::Support) records
    /// a traced run retained after deduplication. Always 0 on the
    /// untraced entry points — the observable proof that tracking is off.
    pub supports_recorded: u64,
    /// DRed phase 3 with a support table
    /// ([`Program::eval_decremental_traced`]): over-deleted tuples whose
    /// recorded alternative support had no over-deleted parent, seeding
    /// re-derivation **without** running the support plan. Each hit is a
    /// [`EvalStats::support_checks`] probe saved.
    pub support_hits: u64,
    /// Fixpoint rounds whose firing jobs ran on ≥ 2 worker threads
    /// (rule-variant fan-out or partitioned hash probes). Zero whenever
    /// the thread budget is 1 or every round stayed under the work-size
    /// thresholds — the observable proof that `EPILOG_THREADS=1` takes
    /// the sequential path.
    pub parallel_rounds: u64,
    /// Maximum worker threads any parallel operation of the run engaged;
    /// 0 when the whole run was sequential. [`EvalStats::absorb`] merges
    /// this by maximum (it is a high-water mark, not a sum).
    pub threads_used: u64,
}

impl EvalStats {
    /// Accumulate another run's counters into this one — used by commits
    /// that chain a deletion fixpoint and an insertion fixpoint (a mixed
    /// retract/assert batch) into one reported figure.
    pub fn absorb(&mut self, other: &EvalStats) {
        self.rule_firings += other.rule_firings;
        self.full_firings += other.full_firings;
        self.derivations += other.derivations;
        self.iterations += other.iterations;
        self.probe_steps += other.probe_steps;
        self.hash_steps += other.hash_steps;
        self.scan_steps += other.scan_steps;
        self.variants_skipped += other.variants_skipped;
        self.rows_examined += other.rows_examined;
        self.plans_compiled += other.plans_compiled;
        self.tuples_overdeleted += other.tuples_overdeleted;
        self.tuples_rederived += other.tuples_rederived;
        self.support_checks += other.support_checks;
        self.supports_recorded += other.supports_recorded;
        self.support_hits += other.support_hits;
        self.parallel_rounds += other.parallel_rounds;
        self.threads_used = self.threads_used.max(other.threads_used);
    }
}

/// Evaluation options: strategy, planner, and the parallel-execution
/// knobs. [`EvalOptions::default`] is what [`Program::eval`] runs —
/// semi-naive, cost-based, thread budget resolved from the
/// `EPILOG_THREADS` environment override (or the hardware parallelism),
/// default work-size thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Semi-naive (`true`) or naive (`false`) fixpoint.
    pub seminaive: bool,
    /// Which planner compiles the rule plans.
    pub planner: PlannerMode,
    /// Worker-thread budget. `0` resolves to the `EPILOG_THREADS`
    /// environment override when set, else the hardware parallelism;
    /// `1` forces the sequential path bit-for-bit.
    pub threads: usize,
    /// Minimum driving rows before a round's firing jobs fan out
    /// ([`PAR_MIN_FANOUT_ROWS`]).
    pub par_fanout_min_rows: usize,
    /// Minimum estimated outer cardinality before a hash step's probes
    /// are partitioned ([`PAR_MIN_PROBE_OUTER`]).
    pub par_probe_min_outer: u64,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            seminaive: true,
            planner: PlannerMode::CostBased,
            threads: 0,
            par_fanout_min_rows: PAR_MIN_FANOUT_ROWS,
            par_probe_min_outer: PAR_MIN_PROBE_OUTER,
        }
    }
}

/// Resolved parallel-execution context threaded through the fixpoint:
/// an effective thread budget (never 0) plus the work-size thresholds.
#[derive(Clone, Copy)]
struct ParCtx {
    threads: usize,
    fanout_min_rows: usize,
    probe_min_outer: u64,
}

impl ParCtx {
    fn from_opts(opts: &EvalOptions) -> ParCtx {
        let threads = if opts.threads == 0 {
            threadpool::configured()
        } else {
            opts.threads
        };
        ParCtx {
            threads,
            fanout_min_rows: opts.par_fanout_min_rows,
            probe_min_outer: opts.par_probe_min_outer,
        }
    }

    /// The context of the incremental/decremental entry points, which
    /// keep their historical signatures: default thresholds, thread
    /// budget from the environment.
    fn auto() -> ParCtx {
        Self::from_opts(&EvalOptions::default())
    }

    /// The same thresholds with the thread budget collapsed to 1 — used
    /// inside a fan-out so jobs never nest another parallel layer.
    fn sequential(self) -> ParCtx {
        ParCtx { threads: 1, ..self }
    }
}

impl Program {
    /// Compute the perfect model by **semi-naive** evaluation: after the
    /// first round of each stratum, only join against the delta of the
    /// previous round. Plans are compiled cost-based
    /// ([`PlannerMode::CostBased`]) from the EDB's live statistics.
    pub fn eval(&self) -> Result<(Database, EvalStats), DatalogError> {
        self.eval_opts(EvalOptions::default())
    }

    /// Compute the perfect model by **naive** evaluation: re-derive
    /// everything from scratch each iteration. Kept as the ablation
    /// baseline.
    pub fn eval_naive(&self) -> Result<(Database, EvalStats), DatalogError> {
        self.eval_opts(EvalOptions {
            seminaive: false,
            ..EvalOptions::default()
        })
    }

    /// Compute the perfect model with an explicit evaluation strategy and
    /// join planner — the ablation surface behind [`Program::eval`] /
    /// [`Program::eval_naive`], used by the planner-differential property
    /// suite and the `f9_joins` bench.
    pub fn eval_with(
        &self,
        seminaive: bool,
        planner: PlannerMode,
    ) -> Result<(Database, EvalStats), DatalogError> {
        self.eval_opts(EvalOptions {
            seminaive,
            planner,
            ..EvalOptions::default()
        })
    }

    /// Compute the perfect model with full [`EvalOptions`] control —
    /// notably an explicit thread budget and parallel work-size
    /// thresholds, which the parallel differential tests use to compare
    /// thread counts in-process without touching the environment.
    pub fn eval_opts(&self, opts: EvalOptions) -> Result<(Database, EvalStats), DatalogError> {
        self.run(opts, None)
    }

    /// [`Program::eval_opts`] with **provenance tracking**: every head
    /// derivation of the fixpoint records a
    /// [`Support`](crate::provenance::Support) — the firing rule and the
    /// ground positive body tuples it matched — into `table`. The model
    /// and every pre-existing [`EvalStats`] counter are identical to the
    /// untraced run's (recording happens inside the same match callbacks;
    /// parallel shards buffer their own records and merge in plan order).
    ///
    /// Semi-naive evaluation fires every ground rule instantiation whose
    /// body first becomes true, so for a **definite** program the table
    /// affords a proof tree ([`SupportTable::why`]) for every derived
    /// tuple of the least model. With stratified negation the recorded
    /// parents are the positive premises only.
    pub fn eval_traced(
        &self,
        opts: EvalOptions,
        table: &mut SupportTable,
    ) -> Result<(Database, EvalStats), DatalogError> {
        let mut sink = ProvenanceSink::new();
        let (db, mut stats) = self.run(opts, Some(&mut sink))?;
        stats.supports_recorded += table.absorb(sink);
        Ok((db, stats))
    }

    /// Resume the least-model fixpoint of a **definite** (negation-free)
    /// program from a model already computed for a smaller fact set.
    ///
    /// `model` must be the least model of this program minus `new_facts`
    /// (i.e. the state before the update), and `new_facts` the ground
    /// atoms an update adds. The genuinely new facts are installed as the
    /// semi-naive delta ([`DeltaDatabase::resume`]) and the fixpoint
    /// continues with **delta-variant plans only** — no full round
    /// re-derives the existing model, so the cost scales with the
    /// consequences of the delta rather than the size of the theory. The
    /// returned [`EvalStats`] covers only the resumed work
    /// (`full_firings` is always 0 on this path).
    ///
    /// Programs with negated body literals cannot be resumed
    /// monotonically — an addition may *retract* conclusions of a higher
    /// stratum — so they fall back to a full [`Program::eval`].
    pub fn eval_incremental(
        &self,
        model: Database,
        new_facts: &Database,
    ) -> Result<(Database, EvalStats), DatalogError> {
        if self.has_negation() {
            // Non-monotone: recompute from the enlarged EDB.
            drop(model);
            let mut prog = self.clone();
            prog.edb.union_with(new_facts);
            return prog.eval();
        }
        // Compile against the existing model: it covers the intensional
        // relations too, so the cost estimates are exact.
        let plans: Vec<RulePlan> = self
            .rules
            .iter()
            .map(|r| RulePlan::compile_with_stats(r, Some(&model)))
            .collect();
        let mut result = self.eval_incremental_with(&plans, model, new_facts)?;
        result.1.plans_compiled += plans.len() as u64;
        Ok(result)
    }

    /// [`Program::eval_incremental`] with **caller-supplied plans** — the
    /// cross-commit plan-cache hook. `plans` must be the compiled plans
    /// of exactly `self.rules`, in order (they depend only on the rule
    /// shapes, so a cache owner invalidates them precisely when a commit
    /// changes the rule set). Reports `plans_compiled == 0`: the whole
    /// point of the cache is that ground-atom commits recompile nothing.
    ///
    /// Falls back to a full [`Program::eval`] (which does compile) when
    /// the program has negated body literals, exactly like
    /// [`Program::eval_incremental`].
    pub fn eval_incremental_with(
        &self,
        plans: &[RulePlan],
        model: Database,
        new_facts: &Database,
    ) -> Result<(Database, EvalStats), DatalogError> {
        if self.has_negation() {
            drop(model);
            let mut prog = self.clone();
            prog.edb.union_with(new_facts);
            return prog.eval();
        }
        self.incremental_impl(plans, model, new_facts, None)
    }

    /// [`Program::eval_incremental_with`] with provenance: every firing
    /// of the resumed fixpoint records its
    /// [`Support`](crate::provenance::Support) into `table`, which must
    /// already hold the supports of `model`. Falls back to a full traced
    /// evaluation — rebuilding `table` from scratch — when the program
    /// has negated body literals, exactly like the untraced entry point.
    pub fn eval_incremental_traced(
        &self,
        plans: &[RulePlan],
        model: Database,
        new_facts: &Database,
        table: &mut SupportTable,
    ) -> Result<(Database, EvalStats), DatalogError> {
        if self.has_negation() {
            drop(model);
            let mut prog = self.clone();
            prog.edb.union_with(new_facts);
            *table = SupportTable::new();
            return prog.eval_traced(EvalOptions::default(), table);
        }
        let mut sink = ProvenanceSink::new();
        let (db, mut stats) = self.incremental_impl(plans, model, new_facts, Some(&mut sink))?;
        stats.supports_recorded += table.absorb(sink);
        Ok((db, stats))
    }

    fn incremental_impl(
        &self,
        plans: &[RulePlan],
        model: Database,
        new_facts: &Database,
        sink: Option<&mut ProvenanceSink>,
    ) -> Result<(Database, EvalStats), DatalogError> {
        debug_assert_eq!(plans.len(), self.rules.len(), "one plan per rule");
        let mut stats = EvalStats::default();
        let plan_refs: Vec<(usize, &RulePlan)> = plans.iter().enumerate().collect();
        let mut ddb = DeltaDatabase::resume(model, new_facts);
        {
            let (total, _) = ddb.parts_mut();
            for (_, plan) in &plan_refs {
                plan.ensure_total_indexes(total);
            }
        }
        seminaive_rounds(
            &plan_refs,
            &mut ddb,
            false,
            &mut stats,
            sink,
            ParCtx::auto(),
        );
        let mut db = ddb.into_total();
        db.prune_empty();
        Ok((db, stats))
    }

    /// Shrink the least model of a **definite** program after a
    /// retraction, without recomputing it from scratch — the
    /// delete-and-re-derive (DRed) algorithm. Compiles plans against the
    /// pre-retraction model; see [`Program::eval_decremental_with`] for
    /// the cached-plan variant and the contract.
    pub fn eval_decremental(
        &self,
        model: Database,
        removed_facts: &Database,
    ) -> Result<(Database, EvalStats), DatalogError> {
        if self.has_negation() {
            drop(model);
            return self.eval();
        }
        let plans: Vec<RulePlan> = self
            .rules
            .iter()
            .map(|r| RulePlan::compile_with_stats(r, Some(&model)))
            .collect();
        let mut result = self.eval_decremental_with(&plans, model, removed_facts)?;
        result.1.plans_compiled += plans.len() as u64;
        Ok(result)
    }

    /// [`Program::eval_decremental`] with **caller-supplied plans** — the
    /// cross-commit plan-cache hook for retract commits.
    ///
    /// `self` must be the **post-retraction** program (its EDB no longer
    /// holds `removed_facts`), `model` the least model of the
    /// pre-retraction program, and `removed_facts` the ground atoms the
    /// update removes. The result is exactly the least model of `self`,
    /// computed in four phases:
    ///
    /// 1. **over-delete**: starting from the removed facts still present
    ///    in the model, run the delta variants against the *original*
    ///    model to collect everything derivable from the deleted set —
    ///    the standard over-approximation of the facts that may have lost
    ///    their derivation;
    /// 2. **prune** the over-deleted set from the model
    ///    ([`Database::remove_tuple`] maintains column indexes
    ///    incrementally);
    /// 3. **re-derive seeds**: an over-deleted tuple survives if it is
    ///    still extensional, or if some rule body re-derives it from the
    ///    pruned model — answered per tuple by the prebound
    ///    [`RulePlan::support`] plan (`support_checks`), never by a full
    ///    firing;
    /// 4. **propagate**: the surviving seeds resume the ordinary
    ///    semi-naive insertion fixpoint, restoring everything reachable
    ///    from them.
    ///
    /// The returned stats report `full_firings == 0` and
    /// `plans_compiled == 0`; programs with negated body literals fall
    /// back to a full [`Program::eval`] exactly like the insertion path.
    pub fn eval_decremental_with(
        &self,
        plans: &[RulePlan],
        model: Database,
        removed_facts: &Database,
    ) -> Result<(Database, EvalStats), DatalogError> {
        if self.has_negation() {
            drop(model);
            return self.eval();
        }
        self.decremental_impl(plans, model, removed_facts, None)
    }

    /// [`Program::eval_decremental_with`] both **consuming and
    /// maintaining** a support table. Phase 3 consults the recorded
    /// supports first: an over-deleted tuple with a support whose parents
    /// all escaped over-deletion is known to survive without running its
    /// support probe (`support_hits` counts the saved `support_checks`).
    /// Probe fallbacks record the derivation they find, phase 4 records
    /// its re-derivations, and supports deriving — or depending on — a
    /// net-removed atom are purged, so `table` leaves holding exactly the
    /// supports of the returned model. Falls back to a full traced
    /// evaluation (rebuilding `table`) on programs with negation.
    pub fn eval_decremental_traced(
        &self,
        plans: &[RulePlan],
        model: Database,
        removed_facts: &Database,
        table: &mut SupportTable,
    ) -> Result<(Database, EvalStats), DatalogError> {
        if self.has_negation() {
            drop(model);
            *table = SupportTable::new();
            return self.eval_traced(EvalOptions::default(), table);
        }
        self.decremental_impl(plans, model, removed_facts, Some(table))
    }

    fn decremental_impl(
        &self,
        plans: &[RulePlan],
        model: Database,
        removed_facts: &Database,
        mut table: Option<&mut SupportTable>,
    ) -> Result<(Database, EvalStats), DatalogError> {
        debug_assert_eq!(plans.len(), self.rules.len(), "one plan per rule");
        let mut stats = EvalStats::default();
        let mut model = model;
        let par = ParCtx::auto();
        let plan_refs: Vec<(usize, &RulePlan)> = plans.iter().enumerate().collect();

        // Phase 1 — over-delete. Seed with the removed facts actually in
        // the model; absent retracts delete nothing. Over-deletion
        // firings are *removals*, never derivations — nothing here is
        // recorded as provenance.
        let mut seed = Database::new();
        for (pred, rel) in removed_facts.relations() {
            for t in rel.iter() {
                if model.contains_tuple(pred, t) {
                    seed.insert_tuple(pred, t.clone());
                }
            }
        }
        if seed.is_empty() {
            return Ok((model, stats));
        }
        for (_, plan) in &plan_refs {
            plan.ensure_total_indexes(&mut model);
        }
        let mut deleted = DeltaDatabase::new(Database::new());
        deleted.advance(&seed);
        while !deleted.delta().is_empty() {
            stats.iterations += 1;
            {
                // Delta-side index warm-up; the deleted split is disjoint
                // from `model`, so both borrows are independent.
                let (_, delta) = deleted.parts_mut();
                for (_, plan) in &plan_refs {
                    for (_, variant) in &plan.variants {
                        variant.ensure_indexes(&mut model, Some(delta));
                    }
                }
            }
            let mut next = Database::new();
            let mut jobs: Vec<(usize, &RulePlan, &ConjunctionPlan)> = Vec::new();
            for (idx, plan) in &plan_refs {
                for (pred, variant) in &plan.variants {
                    if deleted.delta().relation(*pred).is_none_or(|r| r.is_empty()) {
                        stats.variants_skipped += 1;
                        continue;
                    }
                    jobs.push((*idx, plan, variant));
                }
            }
            stats.rule_firings += jobs.len() as u64;
            let round_threads = fire_jobs(
                &jobs,
                &model,
                Some(deleted.delta()),
                deleted.delta().len(),
                &mut next,
                &mut stats,
                None,
                par,
            );
            if round_threads >= 2 {
                stats.parallel_rounds += 1;
            }
            // Every candidate is already in the model (the model is closed
            // under the rules and the delta is a subset of it), so advance
            // filters only against what is already marked deleted.
            deleted.advance(&next);
        }
        let deleted = deleted.into_total();
        stats.tuples_overdeleted = deleted.len() as u64;

        // Phase 2 — prune the over-approximation from the model.
        for (pred, rel) in deleted.relations() {
            for t in rel.iter() {
                model.remove_tuple(pred, t);
            }
        }

        // Phase 3 — find the survivors: extensional membership in the
        // post-retraction EDB, a recorded support disjoint from the
        // over-deleted set (every such parent is still in the pruned
        // model, so the body match is known without probing), or an
        // alternative derivation found by the prebound support plan.
        for (_, plan) in &plan_refs {
            plan.ensure_support_indexes(&mut model);
        }
        let over_ids = table.as_ref().map(|t| t.ids_in(&deleted));
        let mut seeds = Database::new();
        for (pred, rel) in deleted.relations() {
            for t in rel.iter() {
                if self.edb.contains_tuple(pred, t) {
                    seeds.insert_tuple(pred, t.clone());
                    continue;
                }
                if let (Some(tab), Some(over)) = (table.as_deref(), over_ids.as_ref()) {
                    if tab.has_surviving_support(pred, t, over) {
                        stats.support_hits += 1;
                        seeds.insert_tuple(pred, t.clone());
                        continue;
                    }
                }
                for (idx, plan) in &plan_refs {
                    if plan.head.pred != pred {
                        continue;
                    }
                    let mut env = vec![None; plan.slots.len()];
                    if !plan.bind_head(t, &mut env) {
                        continue;
                    }
                    stats.support_checks += 1;
                    let mut witness: Option<Vec<(Pred, Tuple)>> = None;
                    plan.support.for_each_match_counting(
                        &model,
                        None,
                        &mut env,
                        &mut stats.rows_examined,
                        &mut |env| {
                            if witness.is_none() {
                                // Ground the support plan's positive body
                                // — the parents of the found derivation.
                                witness = Some(
                                    plan.support
                                        .steps()
                                        .iter()
                                        .map(|s| (s.template.pred, s.template.ground(env)))
                                        .collect(),
                                );
                            }
                        },
                    );
                    if let Some(parents) = witness {
                        // The probe found a live derivation from the
                        // pruned model — record it so the next deletion
                        // can skip this probe.
                        if let Some(tab) = table.as_deref_mut() {
                            stats.supports_recorded +=
                                tab.record(pred, t, *idx as u32, &parents) as u64;
                        }
                        seeds.insert_tuple(pred, t.clone());
                        break;
                    }
                }
            }
        }

        // Phase 4 — propagate the survivors with the ordinary insertion
        // fixpoint. Everything it adds back was over-deleted (the model
        // was closed before the prune), so it reuses the delta variants.
        let mut sink = table.is_some().then(ProvenanceSink::new);
        let mut ddb = DeltaDatabase::resume(model, &seeds);
        {
            let (total, _) = ddb.parts_mut();
            for (_, plan) in &plan_refs {
                plan.ensure_total_indexes(total);
            }
        }
        seminaive_rounds(&plan_refs, &mut ddb, false, &mut stats, sink.as_mut(), par);
        let mut db = ddb.into_total();
        stats.tuples_rederived = deleted
            .relations()
            .map(|(pred, rel)| rel.iter().filter(|t| db.contains_tuple(pred, t)).count() as u64)
            .sum();
        db.prune_empty();
        if let (Some(tab), Some(sink)) = (table, sink) {
            // Net-removed atoms — over-deleted and not re-derived — take
            // their supports, and every support depending on them, out of
            // the table before the re-derivation records come in.
            let mut gone = Database::new();
            for (pred, rel) in deleted.relations() {
                for t in rel.iter() {
                    if !db.contains_tuple(pred, t) {
                        gone.insert_tuple(pred, t.clone());
                    }
                }
            }
            tab.purge(&gone);
            stats.supports_recorded += tab.absorb(sink);
        }
        Ok((db, stats))
    }

    fn has_negation(&self) -> bool {
        self.rules
            .iter()
            .any(|r| r.body.iter().any(|l| !l.positive))
    }

    fn run(
        &self,
        opts: EvalOptions,
        mut sink: Option<&mut ProvenanceSink>,
    ) -> Result<(Database, EvalStats), DatalogError> {
        let strata = self.stratify()?;
        let max_stratum = strata.values().copied().max().unwrap_or(0);
        let mut db = self.edb.clone();
        let mut stats = EvalStats::default();
        let par = ParCtx::from_opts(&opts);

        // Compile every rule exactly once; plans are reused each round.
        let edb_stats = match opts.planner {
            PlannerMode::Greedy => None,
            PlannerMode::CostBased => Some(&self.edb),
        };
        let plans: Vec<(usize, RulePlan)> = self
            .rules
            .iter()
            .map(|r| {
                (
                    strata[&r.head.pred],
                    RulePlan::compile_with_stats(r, edb_stats),
                )
            })
            .collect();
        stats.plans_compiled = plans.len() as u64;

        for level in 0..=max_stratum {
            // Each plan keeps its **global** rule index — the identity a
            // provenance record names — independent of stratum grouping.
            let level_plans: Vec<(usize, &RulePlan)> = plans
                .iter()
                .enumerate()
                .filter(|(_, (l, _))| *l == level)
                .map(|(i, (_, p))| (i, p))
                .collect();
            if level_plans.is_empty() {
                continue;
            }
            if opts.seminaive {
                db = fix_seminaive(&level_plans, db, &mut stats, sink.as_deref_mut(), par);
            } else {
                fix_naive(&level_plans, &mut db, &mut stats, sink.as_deref_mut(), par);
            }
        }
        // Index warm-up may have created empty relations for body
        // predicates without facts; the result is a set of atoms.
        db.prune_empty();
        Ok((db, stats))
    }
}

/// Semi-naive fixpoint of one stratum over a stable/delta split.
fn fix_seminaive(
    plans: &[(usize, &RulePlan)],
    db: Database,
    stats: &mut EvalStats,
    sink: Option<&mut ProvenanceSink>,
    par: ParCtx,
) -> Database {
    let mut ddb = DeltaDatabase::new(db);
    // Warm the total-side indexes once; incremental maintenance keeps
    // them fresh as `advance` inserts each round's facts.
    {
        let (total, _) = ddb.parts_mut();
        for (_, plan) in plans {
            plan.ensure_total_indexes(total);
        }
    }
    seminaive_rounds(plans, &mut ddb, true, stats, sink, par);
    ddb.into_total()
}

/// Run semi-naive rounds to fixpoint. With `full_first_round` set, the
/// first iteration executes every rule's full plan (the delta is
/// conceptually "everything" — a stratum starting from scratch); without
/// it, the caller pre-seeded the delta ([`DeltaDatabase::resume`]) and
/// only delta variants ever run.
fn seminaive_rounds(
    plans: &[(usize, &RulePlan)],
    ddb: &mut DeltaDatabase,
    full_first_round: bool,
    stats: &mut EvalStats,
    mut sink: Option<&mut ProvenanceSink>,
    par: ParCtx,
) {
    let mut first_round = full_first_round;
    loop {
        stats.iterations += 1;
        let mut new_facts = Database::new();
        let round_threads;
        if first_round {
            // Round 1: the delta is conceptually "everything", so each
            // rule runs its full plan once; the stable total is the
            // driving work size.
            first_round = false;
            let jobs: Vec<(usize, &RulePlan, &ConjunctionPlan)> =
                plans.iter().map(|(i, p)| (*i, *p, &p.full)).collect();
            stats.rule_firings += jobs.len() as u64;
            stats.full_firings += jobs.len() as u64;
            round_threads = fire_jobs(
                &jobs,
                ddb.total(),
                None,
                ddb.total().len(),
                &mut new_facts,
                stats,
                sink.as_deref_mut(),
                par,
            );
        } else {
            // The delta was replaced by `advance` (or pre-seeded by the
            // caller): rebuild the (rare) constant-probed delta-side
            // indexes.
            {
                let (total, delta) = ddb.parts_mut();
                for (_, plan) in plans {
                    for (_, variant) in &plan.variants {
                        variant.ensure_indexes(total, Some(delta));
                    }
                }
            }
            // The skip/run decision is made up front on the coordinator —
            // deterministic regardless of how the surviving jobs are
            // scheduled below.
            let mut jobs: Vec<(usize, &RulePlan, &ConjunctionPlan)> = Vec::new();
            for (idx, plan) in plans {
                for (pred, variant) in &plan.variants {
                    if ddb.delta().relation(*pred).is_none_or(|r| r.is_empty()) {
                        // Nothing new for this literal: the variant is
                        // skipped, not fired with an empty result.
                        stats.variants_skipped += 1;
                        continue;
                    }
                    jobs.push((*idx, plan, variant));
                }
            }
            stats.rule_firings += jobs.len() as u64;
            round_threads = fire_jobs(
                &jobs,
                ddb.total(),
                Some(ddb.delta()),
                ddb.delta().len(),
                &mut new_facts,
                stats,
                sink.as_deref_mut(),
                par,
            );
        }
        if round_threads >= 2 {
            stats.parallel_rounds += 1;
        }
        if ddb.advance(&new_facts) == 0 {
            break;
        }
    }
}

/// Naive fixpoint of one stratum: every rule's full plan, every round.
fn fix_naive(
    plans: &[(usize, &RulePlan)],
    db: &mut Database,
    stats: &mut EvalStats,
    mut sink: Option<&mut ProvenanceSink>,
    par: ParCtx,
) {
    for (_, plan) in plans {
        plan.ensure_total_indexes(db);
    }
    loop {
        stats.iterations += 1;
        let mut new_facts = Database::new();
        let jobs: Vec<(usize, &RulePlan, &ConjunctionPlan)> =
            plans.iter().map(|(i, p)| (*i, *p, &p.full)).collect();
        stats.rule_firings += jobs.len() as u64;
        stats.full_firings += jobs.len() as u64;
        let round_threads = fire_jobs(
            &jobs,
            db,
            None,
            db.len(),
            &mut new_facts,
            stats,
            sink.as_deref_mut(),
            par,
        );
        if round_threads >= 2 {
            stats.parallel_rounds += 1;
        }
        if db.union_with(&new_facts) == 0 {
            break;
        }
    }
}

/// Execute one round's firing jobs, fanning them out across worker
/// threads when the thread budget and the round's driving work size
/// allow. Each parallel job derives into its own candidate database and
/// [`EvalStats`] shard; shards are merged **in plan order** on the
/// coordinator, so every counter and the candidate set handed to
/// [`DeltaDatabase::advance`] are identical to the sequential run's
/// (candidates are sets, counters are sums — both order-independent).
/// Jobs inside a fan-out run with a sequential context: one layer of
/// parallelism at a time. Returns the maximum number of threads any part
/// of the round engaged (1 = fully sequential).
#[allow(clippy::too_many_arguments)]
fn fire_jobs(
    jobs: &[(usize, &RulePlan, &ConjunctionPlan)],
    total: &Database,
    delta: Option<&Database>,
    driving_rows: usize,
    out: &mut Database,
    stats: &mut EvalStats,
    mut sink: Option<&mut ProvenanceSink>,
    par: ParCtx,
) -> usize {
    if par.threads < 2 || jobs.len() < 2 || driving_rows < par.fanout_min_rows {
        let mut used = 1;
        for (idx, plan, join) in jobs {
            used = used.max(fire(
                *idx,
                plan,
                join,
                total,
                delta,
                out,
                stats,
                sink.as_deref_mut(),
                par,
            ));
        }
        return used;
    }
    let seq = par.sequential();
    let tracing = sink.is_some();
    let results = threadpool::parallel_map(jobs.len(), par.threads, |j| {
        let (idx, plan, join) = jobs[j];
        let mut shard_out = Database::new();
        let mut shard = EvalStats::default();
        // Tracing shards buffer their own records; the coordinator
        // concatenates them in plan order below, so the sink contents are
        // independent of scheduling.
        let mut shard_sink = tracing.then(ProvenanceSink::new);
        fire(
            idx,
            plan,
            join,
            total,
            delta,
            &mut shard_out,
            &mut shard,
            shard_sink.as_mut(),
            seq,
        );
        (shard_out, shard, shard_sink)
    });
    for (shard_out, shard, shard_sink) in results {
        out.union_with(&shard_out);
        stats.absorb(&shard);
        if let (Some(sink), Some(shard_sink)) = (sink.as_deref_mut(), shard_sink) {
            sink.extend_from(&shard_sink);
        }
    }
    let engaged = par.threads.min(jobs.len());
    stats.threads_used = stats.threads_used.max(engaged as u64);
    engaged
}

/// Execute one join plan: for every complete match whose negated literals
/// all fail against the total, ground the head into `out`. When the
/// thread budget allows and the plan carries a parallel-eligible hash
/// step, the probes are partitioned across threads
/// ([`ConjunctionPlan::for_each_match_partitioned`] — callback order and
/// counters stay bit-for-bit sequential). Returns the threads engaged.
#[allow(clippy::too_many_arguments)]
fn fire(
    rule_idx: usize,
    plan: &RulePlan,
    join: &ConjunctionPlan,
    total: &Database,
    delta: Option<&Database>,
    out: &mut Database,
    stats: &mut EvalStats,
    mut sink: Option<&mut ProvenanceSink>,
    par: ParCtx,
) -> usize {
    for step in join.steps() {
        match step.strategy {
            StepStrategy::IndexProbe => stats.probe_steps += 1,
            StepStrategy::HashBuildProbe => stats.hash_steps += 1,
            StepStrategy::Scan => stats.scan_steps += 1,
        }
    }
    let mut env = vec![None; plan.slots.len()];
    let mut derivations = 0u64;
    let mut used = 1;
    {
        let mut on_match = |env: &[Option<Param>]| {
            let blocked = plan
                .negatives
                .iter()
                .any(|n| total.contains_tuple(n.pred, &n.ground(env)));
            if !blocked {
                derivations += 1;
                let head = plan.head.ground(env);
                if let Some(sink) = sink.as_deref_mut() {
                    let start = sink.begin_record();
                    sink.push_tuple(plan.head.pred, &head);
                    for step in join.steps() {
                        sink.push_template(&step.template, env);
                    }
                    sink.finish_record(rule_idx as u32, start);
                }
                out.insert_tuple(plan.head.pred, head);
            }
        };
        if par.threads >= 2 && join.parallel_eligible_at(par.probe_min_outer) {
            used = join.for_each_match_partitioned(
                total,
                delta,
                &mut env,
                par.threads,
                &mut stats.rows_examined,
                &mut on_match,
            );
        } else {
            join.for_each_match_counting(
                total,
                delta,
                &mut env,
                &mut stats.rows_examined,
                &mut on_match,
            );
        }
    }
    stats.derivations += derivations;
    if used >= 2 {
        stats.threads_used = stats.threads_used.max(used as u64);
    }
    used
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::formula::Atom;
    use epilog_syntax::parse;
    use epilog_syntax::Pred;

    fn atom(src: &str) -> Atom {
        match parse(src).unwrap() {
            epilog_syntax::Formula::Atom(a) => a,
            other => panic!("not an atom: {other}"),
        }
    }

    fn chain(n: usize) -> Program {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("e(n{i}, n{})\n", i + 1));
        }
        src.push_str("forall x, y. e(x, y) -> t(x, y)\n");
        src.push_str("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)\n");
        Program::from_text(&src).unwrap()
    }

    #[test]
    fn transitive_closure_chain() {
        let p = chain(5);
        let (db, _) = p.eval().unwrap();
        let t = Pred::new("t", 2);
        // 5+4+3+2+1 = 15 pairs.
        assert_eq!(db.relation(t).unwrap().len(), 15);
        assert!(db.contains(&atom("t(n0, n5)")));
        assert!(!db.contains(&atom("t(n5, n0)")));
    }

    #[test]
    fn naive_and_seminaive_agree() {
        for n in [1, 3, 6] {
            let p = chain(n);
            let (a, _) = p.eval().unwrap();
            let (b, _) = p.eval_naive().unwrap();
            assert_eq!(a, b, "models differ for chain({n})");
        }
    }

    #[test]
    fn seminaive_derives_less() {
        let p = chain(12);
        let (_, fast) = p.eval().unwrap();
        let (_, slow) = p.eval_naive().unwrap();
        assert!(
            fast.derivations < slow.derivations,
            "semi-naive {} vs naive {}",
            fast.derivations,
            slow.derivations
        );
    }

    #[test]
    fn seminaive_fires_fewer_plans() {
        let p = chain(12);
        let (_, fast) = p.eval().unwrap();
        let (_, slow) = p.eval_naive().unwrap();
        assert!(
            fast.rule_firings < slow.rule_firings,
            "empty-delta variants must be skipped: semi-naive {} vs naive {}",
            fast.rule_firings,
            slow.rule_firings
        );
    }

    #[test]
    fn incremental_matches_from_scratch_on_chains() {
        for (old, added) in [(5usize, 1usize), (4, 3), (1, 6)] {
            let before = chain(old);
            let (model, _) = before.eval().unwrap();
            // The program over the enlarged fact set…
            let after = chain(old + added);
            // …and the new facts alone.
            let mut new_facts = epilog_storage::Database::new();
            for i in old..old + added {
                new_facts.insert(&atom(&format!("e(n{i}, n{})", i + 1)));
            }
            let (inc, stats) = after.eval_incremental(model, &new_facts).unwrap();
            let (scratch, _) = after.eval().unwrap();
            assert_eq!(inc, scratch, "resume diverged for chain({old})+{added}");
            assert_eq!(
                stats.full_firings, 0,
                "a resumed fixpoint must only run delta variants"
            );
            assert!(stats.rule_firings > 0);
        }
    }

    #[test]
    fn incremental_with_duplicate_facts_is_a_fixpoint_noop() {
        let p = chain(4);
        let (model, _) = p.eval().unwrap();
        let mut dup = epilog_storage::Database::new();
        dup.insert(&atom("e(n0, n1)"));
        let (inc, stats) = p.eval_incremental(model.clone(), &dup).unwrap();
        assert_eq!(inc, model);
        assert_eq!(stats.rule_firings, 0, "empty delta fires nothing");
        assert_eq!(stats.full_firings, 0);
    }

    #[test]
    fn incremental_falls_back_on_negation() {
        let p = Program::from_text(
            "node(a)
             node(b)
             e(a, b)
             forall x, y. e(x, y) -> reach(x, y)
             forall x, y. node(x) & node(y) & ~reach(x, y) -> sep(x, y)",
        )
        .unwrap();
        let (model, _) = p.eval().unwrap();
        assert!(model.contains(&atom("sep(b, a)")));
        // Adding e(b, a) must *remove* sep(b, a): only the full fallback
        // can do that.
        let mut new_facts = epilog_storage::Database::new();
        new_facts.insert(&atom("e(b, a)"));
        let (inc, stats) = p.eval_incremental(model, &new_facts).unwrap();
        assert!(!inc.contains(&atom("sep(b, a)")));
        assert!(inc.contains(&atom("reach(b, a)")));
        assert!(stats.full_firings > 0, "fallback runs full plans");
    }

    #[test]
    fn planner_modes_agree_and_report_strategies() {
        let mut src = String::new();
        for i in 0..8 {
            src.push_str(&format!("q(k{}, val{i})\nbig(k{}, val{i})\n", i % 2, i % 2));
        }
        src.push_str("forall x, y. q(x, y) & big(x, y) -> hit(x, y)\n");
        let p = Program::from_text(&src).unwrap();
        let (cost_db, cost) = p.eval_with(true, PlannerMode::CostBased).unwrap();
        let (greedy_db, greedy) = p.eval_with(true, PlannerMode::Greedy).unwrap();
        assert_eq!(cost_db, greedy_db);
        assert_eq!(cost.derivations, greedy.derivations);
        assert_eq!(cost.rule_firings, greedy.rule_firings);
        assert!(cost.hash_steps > 0, "two bound columns on a large relation");
        assert_eq!(greedy.hash_steps, 0, "the seed planner never hashes");
        assert!(greedy.probe_steps > 0);
        assert!(
            cost.rows_examined < greedy.rows_examined,
            "hash {} vs residual probe {}",
            cost.rows_examined,
            greedy.rows_examined
        );
        assert!(cost.plans_compiled > 0);
    }

    #[test]
    fn recursive_delta_rounds_never_do_more_work_than_greedy() {
        // r(y) ← r(x) ∧ a(x,y) ∧ b(x,y): every semi-naive round carries
        // a one-row delta, so rebuilding a hash table over `b` per round
        // would turn the Θ(n) greedy evaluation into Θ(n²). The outer-
        // cardinality gate must keep the probe strategy here.
        let n = 32;
        let mut src = String::from("r(n0)\n");
        for i in 0..n {
            src.push_str(&format!("a(n{i}, n{})\nb(n{i}, n{})\n", i + 1, i + 1));
        }
        src.push_str("forall x, y. r(x) & a(x, y) & b(x, y) -> r(y)\n");
        let p = Program::from_text(&src).unwrap();
        let (cost_db, cost) = p.eval_with(true, PlannerMode::CostBased).unwrap();
        let (greedy_db, greedy) = p.eval_with(true, PlannerMode::Greedy).unwrap();
        assert_eq!(cost_db, greedy_db);
        assert!(
            cost.rows_examined <= greedy.rows_examined,
            "cost-based {} must not exceed greedy {} on small-delta recursion",
            cost.rows_examined,
            greedy.rows_examined
        );
    }

    #[test]
    fn skipped_variants_are_counted_apart_from_firings() {
        let p = chain(6);
        let (_, stats) = p.eval().unwrap();
        assert!(
            stats.variants_skipped > 0,
            "the e-delta variant is skipped after round 2"
        );
        // Naive evaluation has no variants to skip.
        let (_, naive) = p.eval_naive().unwrap();
        assert_eq!(naive.variants_skipped, 0);
    }

    #[test]
    fn cached_plans_match_fresh_compiles_and_compile_nothing() {
        let before = chain(5);
        let (model, _) = before.eval().unwrap();
        let after = chain(8);
        let mut new_facts = epilog_storage::Database::new();
        for i in 5..8 {
            new_facts.insert(&atom(&format!("e(n{i}, n{})", i + 1)));
        }
        let plans: Vec<crate::plan::RulePlan> = after
            .rules
            .iter()
            .map(|r| crate::plan::RulePlan::compile_with_stats(r, Some(&model)))
            .collect();
        let (cached, cached_stats) = after
            .eval_incremental_with(&plans, model.clone(), &new_facts)
            .unwrap();
        let (fresh, fresh_stats) = after.eval_incremental(model, &new_facts).unwrap();
        assert_eq!(cached, fresh);
        assert_eq!(
            cached_stats.plans_compiled, 0,
            "cache path compiles nothing"
        );
        assert!(fresh_stats.plans_compiled > 0);
        assert_eq!(cached_stats.full_firings, 0);
    }

    #[test]
    fn decremental_matches_from_scratch_on_chains() {
        for (n, cut) in [(6usize, 2usize), (5, 0), (8, 7)] {
            let before = chain(n);
            let (model, _) = before.eval().unwrap();
            // Retract edge cut..cut+1; the post-retraction program is the
            // chain minus that edge.
            let removed_src = format!("e(n{cut}, n{})", cut + 1);
            let mut removed = epilog_storage::Database::new();
            removed.insert(&atom(&removed_src));
            let mut src = String::new();
            for i in (0..n).filter(|&i| i != cut) {
                src.push_str(&format!("e(n{i}, n{})\n", i + 1));
            }
            src.push_str("forall x, y. e(x, y) -> t(x, y)\n");
            src.push_str("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)\n");
            let after = Program::from_text(&src).unwrap();
            let (dec, stats) = after.eval_decremental(model, &removed).unwrap();
            let (scratch, _) = after.eval().unwrap();
            assert_eq!(dec, scratch, "DRed diverged for chain({n}) - edge {cut}");
            assert_eq!(stats.full_firings, 0, "DRed must never run a full plan");
            assert!(stats.tuples_overdeleted > 0);
        }
    }

    #[test]
    fn decremental_rederives_alternative_support() {
        // Two parallel edges a→b; retracting one must keep t(a, b) and
        // everything downstream, re-derived from the surviving edge.
        let before = Program::from_text(
            "e(a, b)
             e2(a, b)
             e(b, c)
             forall x, y. e(x, y) -> t(x, y)
             forall x, y. e2(x, y) -> t(x, y)
             forall x, y, z. e(x, y) & t(y, z) -> t(x, z)",
        )
        .unwrap();
        let (model, _) = before.eval().unwrap();
        let mut removed = epilog_storage::Database::new();
        removed.insert(&atom("e(a, b)"));
        let after = Program::from_text(
            "e2(a, b)
             e(b, c)
             forall x, y. e(x, y) -> t(x, y)
             forall x, y. e2(x, y) -> t(x, y)
             forall x, y, z. e(x, y) & t(y, z) -> t(x, z)",
        )
        .unwrap();
        let (dec, stats) = after.eval_decremental(model, &removed).unwrap();
        let (scratch, _) = after.eval().unwrap();
        assert_eq!(dec, scratch);
        assert!(dec.contains(&atom("t(a, b)")), "e2 still supports t(a, b)");
        assert!(!dec.contains(&atom("t(a, c)")), "a→…→c needed e(a, b)");
        assert!(stats.support_checks > 0, "survival went through support");
        assert!(stats.tuples_rederived > 0);
        assert_eq!(stats.full_firings, 0);
    }

    #[test]
    fn decremental_keeps_extensional_survivors() {
        // t(a, b) is *also* an extensional fact: over-deleting it via the
        // rule must re-seed it from EDB membership, no support query
        // needed for it.
        let before = Program::from_text(
            "e(a, b)
             t(a, b)
             forall x, y. e(x, y) -> t(x, y)",
        )
        .unwrap();
        let (model, _) = before.eval().unwrap();
        let mut removed = epilog_storage::Database::new();
        removed.insert(&atom("e(a, b)"));
        let after = Program::from_text(
            "t(a, b)
             forall x, y. e(x, y) -> t(x, y)",
        )
        .unwrap();
        let (dec, _) = after.eval_decremental(model, &removed).unwrap();
        let (scratch, _) = after.eval().unwrap();
        assert_eq!(dec, scratch);
        assert!(dec.contains(&atom("t(a, b)")));
        assert!(!dec.contains(&atom("e(a, b)")));
    }

    #[test]
    fn decremental_of_absent_fact_is_a_noop() {
        let p = chain(4);
        let (model, _) = p.eval().unwrap();
        let mut removed = epilog_storage::Database::new();
        removed.insert(&atom("e(n9, n10)"));
        let (dec, stats) = p.eval_decremental(model.clone(), &removed).unwrap();
        assert_eq!(dec, model);
        assert_eq!(stats.rule_firings, 0, "empty seed deletes nothing");
        assert_eq!(stats.tuples_overdeleted, 0);
    }

    #[test]
    fn decremental_falls_back_on_negation() {
        let p = Program::from_text(
            "node(a)
             node(b)
             e(a, b)
             e(b, a)
             forall x, y. e(x, y) -> reach(x, y)
             forall x, y. node(x) & node(y) & ~reach(x, y) -> sep(x, y)",
        )
        .unwrap();
        let (model, _) = p.eval().unwrap();
        assert!(!model.contains(&atom("sep(b, a)")));
        // Removing e(b, a) must *add* sep(b, a): only the fallback can.
        let mut removed = epilog_storage::Database::new();
        removed.insert(&atom("e(b, a)"));
        let after = Program::from_text(
            "node(a)
             node(b)
             e(a, b)
             forall x, y. e(x, y) -> reach(x, y)
             forall x, y. node(x) & node(y) & ~reach(x, y) -> sep(x, y)",
        )
        .unwrap();
        let (dec, stats) = after.eval_decremental(model, &removed).unwrap();
        assert!(dec.contains(&atom("sep(b, a)")));
        assert!(stats.full_firings > 0, "fallback runs full plans");
    }

    #[test]
    fn cached_decremental_plans_match_fresh_and_compile_nothing() {
        let before = chain(7);
        let (model, _) = before.eval().unwrap();
        let mut removed = epilog_storage::Database::new();
        removed.insert(&atom("e(n3, n4)"));
        let mut src = String::new();
        for i in (0..7).filter(|&i| i != 3) {
            src.push_str(&format!("e(n{i}, n{})\n", i + 1));
        }
        src.push_str("forall x, y. e(x, y) -> t(x, y)\n");
        src.push_str("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)\n");
        let after = Program::from_text(&src).unwrap();
        let plans: Vec<crate::plan::RulePlan> = after
            .rules
            .iter()
            .map(|r| crate::plan::RulePlan::compile_with_stats(r, Some(&model)))
            .collect();
        let (cached, cached_stats) = after
            .eval_decremental_with(&plans, model.clone(), &removed)
            .unwrap();
        let (fresh, fresh_stats) = after.eval_decremental(model, &removed).unwrap();
        assert_eq!(cached, fresh);
        assert_eq!(
            cached_stats.plans_compiled, 0,
            "cache path compiles nothing"
        );
        assert!(fresh_stats.plans_compiled > 0);
        assert_eq!(cached_stats.full_firings, 0);
    }

    #[test]
    fn stats_absorb_sums_every_counter() {
        let mut a = EvalStats {
            rule_firings: 1,
            full_firings: 2,
            derivations: 3,
            iterations: 4,
            probe_steps: 5,
            hash_steps: 6,
            scan_steps: 7,
            variants_skipped: 8,
            rows_examined: 9,
            plans_compiled: 10,
            tuples_overdeleted: 11,
            tuples_rederived: 12,
            support_checks: 13,
            supports_recorded: 14,
            support_hits: 15,
            parallel_rounds: 16,
            threads_used: 17,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.rule_firings, 2);
        assert_eq!(a.full_firings, 4);
        assert_eq!(a.derivations, 6);
        assert_eq!(a.iterations, 8);
        assert_eq!(a.probe_steps, 10);
        assert_eq!(a.hash_steps, 12);
        assert_eq!(a.scan_steps, 14);
        assert_eq!(a.variants_skipped, 16);
        assert_eq!(a.rows_examined, 18);
        assert_eq!(a.plans_compiled, 20);
        assert_eq!(a.tuples_overdeleted, 22);
        assert_eq!(a.tuples_rederived, 24);
        assert_eq!(a.support_checks, 26);
        assert_eq!(a.supports_recorded, 28);
        assert_eq!(a.support_hits, 30);
        assert_eq!(a.parallel_rounds, 32);
        // A high-water mark, not a sum: absorbing an equal run keeps it.
        assert_eq!(a.threads_used, 17);
        let wider = EvalStats {
            threads_used: 40,
            ..EvalStats::default()
        };
        a.absorb(&wider);
        assert_eq!(a.threads_used, 40);
    }

    /// Options forcing every parallel path at `threads` workers: zero
    /// work-size thresholds, so even toy programs fan out and partition.
    fn par_opts(threads: usize) -> EvalOptions {
        EvalOptions {
            threads,
            par_fanout_min_rows: 0,
            par_probe_min_outer: 0,
            ..EvalOptions::default()
        }
    }

    /// The counters that must be invariant across thread counts — i.e.
    /// everything except the parallelism observables themselves.
    fn scrubbed(mut s: EvalStats) -> EvalStats {
        s.parallel_rounds = 0;
        s.threads_used = 0;
        s
    }

    #[test]
    fn parallel_fanout_matches_sequential_counters_exactly() {
        // chain(12) runs a 2-rule stratum with recursive delta rounds:
        // with zeroed thresholds every round fans out. Model and every
        // merged counter — including variants_skipped and rows_examined,
        // tallied in thread-local shards — must equal the sequential
        // run's exactly.
        let p = chain(12);
        let (seq_db, seq) = p.eval_opts(par_opts(1)).unwrap();
        for threads in [2, 4, 8] {
            let (par_db, par) = p.eval_opts(par_opts(threads)).unwrap();
            assert_eq!(par_db, seq_db, "model diverged at {threads} threads");
            assert_eq!(
                scrubbed(par),
                scrubbed(seq),
                "counters diverged at {threads} threads"
            );
            assert!(par.parallel_rounds > 0, "fan-out must engage");
            assert!(par.threads_used >= 2);
        }
        assert_eq!(seq.parallel_rounds, 0, "1 thread is the sequential path");
        assert_eq!(seq.threads_used, 0);
    }

    #[test]
    fn partitioned_probes_match_sequential_counters_exactly() {
        // Skewed two-column join: the cost-based planner hashes `big`,
        // and with a zero outer threshold the single-rule round (no
        // fan-out possible) partitions the probe rows instead.
        let mut src = String::new();
        for i in 0..32 {
            src.push_str(&format!("q(k{}, val{i})\nbig(k{}, val{i})\n", i % 4, i % 4));
        }
        src.push_str("forall x, y. q(x, y) & big(x, y) -> hit(x, y)\n");
        let p = Program::from_text(&src).unwrap();
        let (seq_db, seq) = p.eval_opts(par_opts(1)).unwrap();
        assert!(seq.hash_steps > 0, "workload must exercise the hash path");
        let (par_db, par) = p.eval_opts(par_opts(4)).unwrap();
        assert_eq!(par_db, seq_db);
        assert_eq!(scrubbed(par), scrubbed(seq));
        assert!(par.threads_used >= 2, "partitioned probes must engage");
    }

    #[test]
    fn default_thresholds_keep_tiny_fixpoints_sequential() {
        // Even with a thread budget, a fixpoint below the work-size
        // thresholds must not spawn: same counters, zero parallelism
        // observables.
        let p = chain(6);
        let opts = EvalOptions {
            threads: 4,
            ..EvalOptions::default()
        };
        let (db, stats) = p.eval_opts(opts).unwrap();
        let (seq_db, seq) = p.eval().unwrap();
        assert_eq!(db, seq_db);
        assert_eq!(stats.parallel_rounds, 0);
        assert_eq!(stats.threads_used, 0);
        assert_eq!(scrubbed(stats), scrubbed(seq));
    }

    #[test]
    fn parallel_evaluation_respects_stratified_negation() {
        // Strata must still evaluate in order under fan-out: the negated
        // stratum reads a completed lower stratum.
        let src = "node(a)
             node(b)
             node(c)
             e(a, b)
             forall x, y. e(x, y) -> reach(x, y)
             forall x, y, z. reach(x, y) & e(y, z) -> reach(x, z)
             forall x, y. node(x) & node(y) & ~reach(x, y) -> sep(x, y)";
        let p = Program::from_text(src).unwrap();
        let (seq_db, seq) = p.eval_opts(par_opts(1)).unwrap();
        let (par_db, par) = p.eval_opts(par_opts(4)).unwrap();
        assert_eq!(par_db, seq_db);
        assert_eq!(scrubbed(par), scrubbed(seq));
        assert!(par_db.contains(&atom("sep(b, a)")));
    }

    #[test]
    fn stratified_negation() {
        // Reachability complement: unreachable pairs of nodes.
        let p = Program::from_text(
            "node(a)
             node(b)
             node(c)
             e(a, b)
             forall x, y. e(x, y) -> reach(x, y)
             forall x, y, z. reach(x, y) & e(y, z) -> reach(x, z)
             forall x, y. node(x) & node(y) & ~reach(x, y) -> sep(x, y)",
        )
        .unwrap();
        let (db, _) = p.eval().unwrap();
        assert!(db.contains(&atom("sep(b, a)")));
        assert!(db.contains(&atom("sep(a, a)")));
        assert!(!db.contains(&atom("sep(a, b)")));
        let sep = Pred::new("sep", 2);
        assert_eq!(db.relation(sep).unwrap().len(), 8); // 9 pairs − reach(a,b)
    }

    #[test]
    fn same_generation() {
        let p = Program::from_text(
            "par(c1, p1)
             par(c2, p1)
             par(p1, g1)
             par(p2, g1)
             forall x, y, z. par(x, z) & par(y, z) -> sg(x, y)
             forall x, y, u, v. par(x, u) & sg(u, v) & par(y, v) -> sg(x, y)",
        )
        .unwrap();
        let (db, _) = p.eval().unwrap();
        assert!(db.contains(&atom("sg(c1, c2)")));
        assert!(db.contains(&atom("sg(p1, p2)")));
        assert!(db.contains(&atom("sg(c1, c1)")));
        // Children are not same-generation with parents.
        assert!(!db.contains(&atom("sg(c1, p1)")));
    }

    #[test]
    fn facts_only_program() {
        let p = Program::from_text("p(a)\np(b)").unwrap();
        let (db, stats) = p.eval().unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(stats.derivations, 0);
    }

    #[test]
    fn ground_head_rules_fire_once() {
        // A rule with a body but a ground head, plus a body-less ground
        // rule (the degenerate plans).
        let p = Program::from_text(
            "p(a)
             forall x. p(x) -> q(b)",
        )
        .unwrap();
        let (db, _) = p.eval().unwrap();
        assert!(db.contains(&atom("q(b)")));
        let (db2, _) = p.eval_naive().unwrap();
        assert_eq!(db, db2);
    }

    #[test]
    fn no_phantom_relations_from_index_warmup() {
        // Body predicate `e` has no facts; index warm-up must not leave an
        // empty `e` relation in the result (it would break Database
        // equality and preds() for downstream oracles).
        let p = Program::from_text("f(b)\nforall x. e(a, x) -> g(x)").unwrap();
        let (db, _) = p.eval().unwrap();
        assert_eq!(db.preds(), vec![Pred::new("f", 1)]);
        assert!(db
            .preds()
            .into_iter()
            .all(|pr| !db.relation(pr).unwrap().is_empty()));
        let (db2, _) = p.eval_naive().unwrap();
        assert_eq!(db, db2);
    }

    #[test]
    fn non_ground_fact_rule() {
        // A body-less rule with variables would be unsafe; check rejection.
        let err = Program::from_text("forall x. p(x) -> q(x)\n")
            .and_then(|_| Program::from_text("q(x)").map(|_| ()));
        // `q(x)` alone: parse_theory gives a non-sentence... it parses as a
        // formula with free var; from_sentences sees a non-ground atom rule
        // with empty body → unsafe.
        assert!(err.is_err());
    }

    use crate::provenance::{params_of, SupportTable};

    /// Zero the provenance counters — the only ones a traced run is
    /// allowed to move relative to its untraced twin.
    fn scrub_prov(mut s: EvalStats) -> EvalStats {
        s.supports_recorded = 0;
        s.support_hits = 0;
        s
    }

    #[test]
    fn traced_eval_matches_untraced_and_proves_every_idb_tuple() {
        let p = chain(8);
        let (plain_db, plain) = p.eval().unwrap();
        let mut table = SupportTable::new();
        let (traced_db, traced) = p.eval_traced(EvalOptions::default(), &mut table).unwrap();
        assert_eq!(traced_db, plain_db);
        assert_eq!(scrub_prov(traced), plain, "tracking must not change work");
        assert!(traced.supports_recorded > 0);
        assert_eq!(plain.supports_recorded, 0, "untraced runs record nothing");
        assert!(table.consistent_with(&traced_db, p.rules.len()));
        for a in traced_db.atoms() {
            let t = params_of(&a).unwrap();
            let tree = table
                .why(&p.edb, a.pred, &t)
                .unwrap_or_else(|| panic!("no proof for {a}"));
            assert!(tree.replays(&p), "proof of {a} must replay");
        }
    }

    #[test]
    fn traced_table_is_deterministic_across_thread_counts() {
        let p = chain(12);
        let mut seq_table = SupportTable::new();
        let (seq_db, _) = p.eval_traced(par_opts(1), &mut seq_table).unwrap();
        for threads in [2, 4] {
            let mut par_table = SupportTable::new();
            let (par_db, par) = p.eval_traced(par_opts(threads), &mut par_table).unwrap();
            assert_eq!(par_db, seq_db);
            assert!(par.parallel_rounds > 0, "fan-out must engage");
            assert_eq!(
                par_table, seq_table,
                "shard merge order must make the table scheduling-independent"
            );
        }
    }

    #[test]
    fn traced_incremental_extends_the_table() {
        let before = chain(4);
        let mut table = SupportTable::new();
        let (model, _) = before
            .eval_traced(EvalOptions::default(), &mut table)
            .unwrap();
        let after = chain(6);
        let mut new_facts = epilog_storage::Database::new();
        for i in 4..6 {
            new_facts.insert(&atom(&format!("e(n{i}, n{})", i + 1)));
        }
        let plans: Vec<RulePlan> = after
            .rules
            .iter()
            .map(|r| RulePlan::compile_with_stats(r, Some(&model)))
            .collect();
        let (inc, stats) = after
            .eval_incremental_traced(&plans, model, &new_facts, &mut table)
            .unwrap();
        let (scratch, _) = after.eval().unwrap();
        assert_eq!(inc, scratch);
        assert!(stats.supports_recorded > 0);
        assert!(table.consistent_with(&inc, after.rules.len()));
        for a in inc.atoms() {
            let t = params_of(&a).unwrap();
            let tree = table.why(&after.edb, a.pred, &t).unwrap();
            assert!(
                tree.replays(&after),
                "proof of {a} must replay after resume"
            );
        }
    }

    #[test]
    fn traced_decremental_skips_probes_and_purges() {
        // Two parallel edges a→b (the alternative-support workload): the
        // recorded e2 support lets t(a, b) survive without a probe.
        let before = Program::from_text(
            "e(a, b)
             e2(a, b)
             e(b, c)
             forall x, y. e(x, y) -> t(x, y)
             forall x, y. e2(x, y) -> t(x, y)
             forall x, y, z. e(x, y) & t(y, z) -> t(x, z)",
        )
        .unwrap();
        let mut table = SupportTable::new();
        let (model, _) = before
            .eval_traced(EvalOptions::default(), &mut table)
            .unwrap();
        let mut removed = epilog_storage::Database::new();
        removed.insert(&atom("e(a, b)"));
        let after = Program::from_text(
            "e2(a, b)
             e(b, c)
             forall x, y. e(x, y) -> t(x, y)
             forall x, y. e2(x, y) -> t(x, y)
             forall x, y, z. e(x, y) & t(y, z) -> t(x, z)",
        )
        .unwrap();
        let plans: Vec<RulePlan> = after
            .rules
            .iter()
            .map(|r| RulePlan::compile_with_stats(r, Some(&model)))
            .collect();
        let (plain_db, plain) = after
            .eval_decremental_with(&plans, model.clone(), &removed)
            .unwrap();
        let (traced_db, traced) = after
            .eval_decremental_traced(&plans, model, &removed, &mut table)
            .unwrap();
        assert_eq!(traced_db, plain_db, "supports must not change the model");
        assert_eq!(traced.tuples_rederived, plain.tuples_rederived);
        assert!(traced.support_hits > 0, "t(a, b) survives on record alone");
        assert!(
            traced.support_checks < plain.support_checks,
            "every hit is a probe saved: {} vs {}",
            traced.support_checks,
            plain.support_checks
        );
        // The table is purged down to the shrunken model and stays
        // proof-complete for it.
        assert!(table.consistent_with(&traced_db, after.rules.len()));
        for a in traced_db.atoms() {
            let t = params_of(&a).unwrap();
            assert!(
                table.why(&after.edb, a.pred, &t).is_some(),
                "{a} must stay provable after deletion"
            );
        }
        assert!(
            !traced_db.contains(&atom("t(a, c)")),
            "a→…→c needed e(a, b)"
        );
    }
}
