//! Circumscription and the generalized closed-world assumption (GCWA).
//!
//! Section 7 shows that Reiter's `Closure` collapses the `K` operator
//! (Theorem 7.1) — but Example 7.2 shows this is *false* for
//! circumscriptive closure (Lifschitz) and for Minker's GCWA: with
//! `Σ = {p ∨ q}`, both closures yield the two minimal models `{p}` and
//! `{q}`, so `Circ(Σ) ⊨ ¬Kp` while `Circ(Σ) ⊭_FOPCE ¬p`.
//!
//! We implement both over the brute-force [`ModelSet`]: circumscription
//! keeps the ⊆-minimal worlds; the GCWA adds `¬π` for every ground atom
//! `π` false in all minimal worlds.

use crate::oracle::ModelSet;
use epilog_storage::Database;
use epilog_syntax::formula::{Atom, Formula};

/// The ⊆-minimal worlds of a model set (circumscribing all predicates in
/// parallel, no fixed or varying predicates).
pub fn minimal_worlds(ms: &ModelSet) -> ModelSet {
    let worlds = ms.worlds();
    let minimal: Vec<Database> = worlds
        .iter()
        .filter(|w| {
            !worlds
                .iter()
                .any(|other| other.subset_of(w) && !w.subset_of(other))
        })
        .cloned()
        .collect();
    ModelSet::from_worlds(minimal, ms.universe().to_vec())
}

/// The GCWA negations: `¬π` for every ground atom `π` of `base` that is
/// false in every minimal world. (Minker's GCWA adds exactly the negations
/// of atoms that are false in all minimal models.)
pub fn gcwa_negations(ms: &ModelSet, base: &[Atom]) -> Vec<Formula> {
    let min = minimal_worlds(ms);
    base.iter()
        .filter(|a| min.worlds().iter().all(|w| !w.contains(a)))
        .map(|a| Formula::not(Formula::Atom(a.clone())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Answer;
    use crate::oracle::herbrand_base;
    use epilog_syntax::{parse, Param, Pred, Theory};

    fn p_or_q_models() -> ModelSet {
        let theory = Theory::from_text("p | q").unwrap();
        let preds = vec![Pred::new("p", 0), Pred::new("q", 0)];
        ModelSet::models(&theory, &[Param::new("c")], &preds)
    }

    #[test]
    fn example_72_minimal_models() {
        // Circ({p ∨ q}) has exactly the models {p} and {q}.
        let ms = p_or_q_models();
        let circ = minimal_worlds(&ms);
        assert_eq!(circ.worlds().len(), 2);
        for w in circ.worlds() {
            assert_eq!(w.len(), 1, "minimal models contain exactly one atom");
        }
    }

    #[test]
    fn example_72_k_does_not_collapse() {
        // Circ(Σ) ⊨ ¬Kp  but  Circ(Σ) ⊭_FOPCE ¬p.
        let circ = minimal_worlds(&p_or_q_models());
        assert_eq!(circ.answer(&parse("~K p").unwrap()), Answer::Yes);
        assert_ne!(circ.answer(&parse("~p").unwrap()), Answer::Yes);
        // So the epistemic query and its K-stripped version genuinely
        // differ under circumscription — unlike under Closure (Thm 7.1).
    }

    #[test]
    fn gcwa_on_disjunction_adds_nothing() {
        // Neither p nor q is false in all minimal models, so the GCWA adds
        // no negations: the disjunction stays indefinite.
        let ms = p_or_q_models();
        let base = herbrand_base(&[], &[Pred::new("p", 0), Pred::new("q", 0)]);
        let negs = gcwa_negations(&ms, &base);
        assert!(negs.is_empty());
    }

    #[test]
    fn gcwa_negates_underivable_atoms() {
        // Σ = {p}: q is false in the minimal model, so GCWA adds ¬q.
        let theory = Theory::from_text("p").unwrap();
        let preds = vec![Pred::new("p", 0), Pred::new("q", 0)];
        let ms = ModelSet::models(&theory, &[Param::new("c")], &preds);
        let base = herbrand_base(&[], &preds);
        let negs = gcwa_negations(&ms, &base);
        assert_eq!(negs.len(), 1);
        assert_eq!(negs[0].to_string(), "~q");
    }

    #[test]
    fn definite_theories_have_unique_minimal_model() {
        let theory = Theory::from_text("p(a)\nforall x. p(x) -> q(x)").unwrap();
        let universe = [Param::new("a"), Param::new("b")];
        let preds = vec![Pred::new("p", 1), Pred::new("q", 1)];
        let ms = ModelSet::models(&theory, &universe, &preds);
        let circ = minimal_worlds(&ms);
        assert_eq!(circ.worlds().len(), 1);
        let m = &circ.worlds()[0];
        assert_eq!(m.len(), 2, "p(a) and q(a) only");
    }
}
