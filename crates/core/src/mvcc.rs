//! MVCC snapshot publication: immutable committed states behind an
//! atomically swappable head pointer.
//!
//! The serving architecture is single-writer / many-reader. A
//! [`CommittedState`] is an immutable [`EpistemicDb`] (theory,
//! constraints, materialized model, cached rule plans, compiled
//! incremental checker) stamped with the WAL LSN it reflects. The one
//! writer builds the *next* state privately — through the ordinary
//! [`Transaction::prepare`](crate::Transaction::prepare) /
//! [`PreparedCommit`](crate::PreparedCommit) path — and publishes it
//! into a [`StateCell`] with a pointer swap.
//!
//! Readers call [`StateCell::snapshot`] and get a [`ReadHandle`]: an
//! `Arc` clone of whatever state was head at that instant. Queries run
//! against the handle with no further coordination — a snapshot can
//! never change underneath a reader, a reader can never observe a
//! half-applied commit, and the writer never waits for readers (old
//! states are freed when their last handle drops).
//!
//! The head cell is a `RwLock<Arc<CommittedState>>` used only for the
//! pointer: `snapshot` holds the read lock for one `Arc::clone` and
//! `publish` holds the write lock for one pointer store. All commit
//! work — validation, WAL append, fsync, model maintenance — happens
//! before `publish` is called, so readers never block on a commit in
//! flight.

use crate::db::EpistemicDb;
use std::ops::Deref;
use std::sync::{Arc, RwLock};

/// An immutable committed database state stamped with its WAL LSN.
///
/// Dereferences to [`EpistemicDb`], so every read-only query
/// (`ask`, `demo`, `answers`, `closed`, …) is available directly.
#[derive(Clone)]
pub struct CommittedState {
    db: EpistemicDb,
    lsn: u64,
}

impl CommittedState {
    /// Wrap a database as the committed state at `lsn`.
    ///
    /// The caller hands over ownership; the state is immutable from
    /// here on (no `&mut` access is ever exposed).
    pub fn new(db: EpistemicDb, lsn: u64) -> Self {
        CommittedState { db, lsn }
    }

    /// The WAL LSN this state reflects (0 for the initial state).
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// The underlying database.
    pub fn db(&self) -> &EpistemicDb {
        &self.db
    }
}

impl Deref for CommittedState {
    type Target = EpistemicDb;
    fn deref(&self) -> &EpistemicDb {
        &self.db
    }
}

/// A reader's handle on one committed state: a cheap `Arc` clone that
/// pins the snapshot for as long as the handle lives.
#[derive(Clone)]
pub struct ReadHandle(Arc<CommittedState>);

impl ReadHandle {
    /// The pinned state (also reachable through `Deref`).
    pub fn state(&self) -> &CommittedState {
        &self.0
    }

    /// The inner `Arc`, for callers that want to store it directly.
    pub fn into_arc(self) -> Arc<CommittedState> {
        self.0
    }
}

impl Deref for ReadHandle {
    type Target = CommittedState;
    fn deref(&self) -> &CommittedState {
        &self.0
    }
}

/// The head pointer: which committed state new readers see.
pub struct StateCell {
    head: RwLock<Arc<CommittedState>>,
}

impl StateCell {
    /// Start with `db` as the committed state at `lsn`.
    pub fn new(db: EpistemicDb, lsn: u64) -> Self {
        StateCell {
            head: RwLock::new(Arc::new(CommittedState::new(db, lsn))),
        }
    }

    /// Pin the current head. One atomic refcount increment; never
    /// blocks on commit work (the write lock is held only for the
    /// pointer swap itself).
    pub fn snapshot(&self) -> ReadHandle {
        ReadHandle(Arc::clone(&self.head.read().unwrap()))
    }

    /// The LSN of the current head.
    pub fn head_lsn(&self) -> u64 {
        self.head.read().unwrap().lsn
    }

    /// Publish `next` as the new head. Readers that already hold a
    /// handle keep their old snapshot; new `snapshot` calls see `next`.
    ///
    /// Single-writer discipline: callers must ensure only one thread
    /// publishes, and that `next.lsn()` is not lower than the head's
    /// (enforced here by a debug assertion).
    pub fn publish(&self, next: Arc<CommittedState>) {
        let mut head = self.head.write().unwrap();
        debug_assert!(
            next.lsn >= head.lsn,
            "published state must not move the LSN backwards"
        );
        *head = next;
    }
}

// The whole point: committed states are shareable across threads.
const _: () = {
    const fn assert_sync<T: Send + Sync>() {}
    assert_sync::<CommittedState>();
    assert_sync::<ReadHandle>();
    assert_sync::<StateCell>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_semantics::Answer;
    use epilog_syntax::parse;

    fn db(text: &str) -> EpistemicDb {
        EpistemicDb::from_text(text).unwrap()
    }

    #[test]
    fn snapshots_pin_their_state_across_publishes() {
        let cell = StateCell::new(db("emp(Mary)"), 0);
        let before = cell.snapshot();
        assert_eq!(before.lsn(), 0);

        // Writer: build the next state privately, then publish.
        let mut next = before.db().clone();
        next.assert(parse("emp(Sue)").unwrap()).unwrap();
        cell.publish(Arc::new(CommittedState::new(next, 1)));

        let after = cell.snapshot();
        assert_eq!(after.lsn(), 1);
        let q = parse("K emp(Sue)").unwrap();
        assert_eq!(before.ask(&q), Answer::No, "old snapshot is immutable");
        assert_eq!(after.ask(&q), Answer::Yes);
        assert_eq!(cell.head_lsn(), 1);
    }

    #[test]
    fn concurrent_readers_and_publishes() {
        let cell = Arc::new(StateCell::new(db("p(a)"), 0));
        let q = parse("K p(a)").unwrap();
        threadpool::scope(|s| {
            for _ in 0..3 {
                let cell = Arc::clone(&cell);
                let q = q.clone();
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..50 {
                        let h = cell.snapshot();
                        assert!(h.lsn() >= last, "snapshot LSNs are monotone");
                        last = h.lsn();
                        assert_eq!(h.ask(&q), Answer::Yes);
                    }
                });
            }
            let cell = Arc::clone(&cell);
            s.spawn(move || {
                for lsn in 1..=20u64 {
                    let mut next = cell.snapshot().db().clone();
                    next.assert(parse(&format!("q(c{lsn})")).unwrap()).unwrap();
                    cell.publish(Arc::new(CommittedState::new(next, lsn)));
                }
            });
        });
        assert_eq!(cell.head_lsn(), 20);
    }
}
