//! Terms of FOPCE/KFOPCE: variables and parameters.
//!
//! The fragment treated by the paper is function-free (footnote 1), so a
//! term is either a variable or a parameter.

use crate::symbols::{Param, Var};
use std::fmt;

/// A term: a variable or a parameter. No function symbols exist in this
/// fragment of the language.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A variable occurrence.
    Var(Var),
    /// A parameter occurrence.
    Param(Param),
}

impl Term {
    /// The variable inside, if this term is a variable.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Param(_) => None,
        }
    }

    /// The parameter inside, if this term is a parameter.
    pub fn as_param(&self) -> Option<Param> {
        match self {
            Term::Param(p) => Some(*p),
            Term::Var(_) => None,
        }
    }

    /// Whether the term is ground (contains no variable), i.e. is a
    /// parameter.
    pub fn is_ground(&self) -> bool {
        matches!(self, Term::Param(_))
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Param> for Term {
    fn from(p: Param) -> Self {
        Term::Param(p)
    }
}

impl fmt::Display for Term {
    /// Prints the bare symbol name, except for a parameter whose name
    /// follows the variable-naming convention (`x`, `y1`, …): that one is
    /// escaped as `$x` so the parser reads it back as a parameter. This is
    /// the round-trip guarantee the persistence layer's textual log format
    /// rests on: `parse(w.to_string()) == w` for every sentence a database
    /// can hold (symbol names must be valid identifiers not starting with
    /// `$`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Param(p) => {
                let name = p.name();
                if crate::parse::is_conventional_var(&name) {
                    write!(f, "${name}")
                } else {
                    write!(f, "{p}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_predicates() {
        let v: Term = Var::new("x").into();
        let p: Term = Param::new("John").into();
        assert!(v.as_var().is_some());
        assert!(v.as_param().is_none());
        assert!(p.as_param().is_some());
        assert!(!v.is_ground());
        assert!(p.is_ground());
    }

    #[test]
    fn display() {
        let p: Term = Param::new("Math").into();
        assert_eq!(p.to_string(), "Math");
    }
}
