//! F8 — durability overhead and recovery latency.
//!
//! Two questions, per the Durability section of ROADMAP.md:
//!
//! 1. **What does a durable commit cost per fsync policy?** An in-memory
//!    commit vs `DurableDb` commits under `Never` / `Batch(8)` / `Always`.
//!    `Never` and `Batch` should sit within noise of the in-memory
//!    baseline (the log append is a buffered sequential write); `Always`
//!    pays one `fdatasync` per commit — the floor of real durability.
//! 2. **What does recovery cost?** `recover` from a snapshot at the log
//!    head vs full replay from genesis, at growing commit counts. Replay
//!    re-runs every commit through the real transaction path, so it grows
//!    with history length; snapshot-load grows only with *state* size —
//!    the gap is the reason snapshots and `compact()` exist.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epilog_bench::workloads::{durable_registrar, enrollment_batch, registrar_db};
use epilog_core::prover_for;
use epilog_persist::{DurableDb, FsyncPolicy, RecoveryOptions};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    let d = std::env::temp_dir().join(format!(
        "epilog-f8-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn bench(c: &mut Criterion) {
    // Correctness gate: recovery reproduces the live durable state.
    {
        let dir = temp_dir("gate");
        let db = durable_registrar(&dir, 16, FsyncPolicy::Never);
        let live = db.theory().clone();
        drop(db); // crash
        let (rec, report) = DurableDb::recover(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(report.records_replayed, 18, "2 constraints + 16 commits");
        assert_eq!(rec.theory(), &live);
        assert_eq!(
            rec.prover().atom_model(),
            prover_for(live.clone()).atom_model()
        );
        assert!(rec.satisfies_constraints());
        drop(rec);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    let mut g = c.benchmark_group("f8_recovery");
    g.sample_size(10);

    // ---- Commit overhead per fsync policy -----------------------------
    // Each measured commit enrolls a fresh employee (so it is never a
    // no-op) into a registrar seeded at n=32; state grows by one employee
    // per sample, as in a live system.
    let n = 32usize;
    g.bench_with_input(BenchmarkId::new("commit_inmemory", n), &n, |b, &n| {
        let mut db = registrar_db(n);
        let mut next = n;
        b.iter(|| {
            let mut txn = db.transaction();
            for w in enrollment_batch(next, 1) {
                txn = txn.assert(w);
            }
            next += 1;
            let _ = txn.commit().unwrap();
        })
    });
    for (label, policy) in [
        ("commit_durable_never", FsyncPolicy::Never),
        ("commit_durable_batch8", FsyncPolicy::Batch(8)),
        ("commit_durable_always", FsyncPolicy::Always),
    ] {
        g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
            let dir = temp_dir(label);
            let mut db = durable_registrar(&dir, n, policy);
            let mut next = n;
            b.iter(|| {
                let mut txn = db.transaction();
                for w in enrollment_batch(next, 1) {
                    txn = txn.assert(w);
                }
                next += 1;
                let _ = txn.commit().unwrap();
            });
            drop(db);
            std::fs::remove_dir_all(&dir).unwrap();
        });
    }

    // ---- Recovery: snapshot + replay vs full replay -------------------
    // The directory holds n commits and a snapshot at the log head:
    // snapshot recovery loads state only (adopted constraints, attached
    // model); full replay re-commits all n records from the genesis
    // snapshot through the checked transaction path. Sizes are capped
    // like f7's: replayed commits pay the same constraint-check costs as
    // live ones, which grow superlinearly in n.
    for n in [16usize, 48] {
        let dir = temp_dir(&format!("recover-{n}"));
        let mut db = durable_registrar(&dir, n, FsyncPolicy::Never);
        let _ = db.snapshot().unwrap();
        drop(db);
        g.bench_with_input(BenchmarkId::new("recover_snapshot", n), &n, |b, _| {
            b.iter(|| {
                let (db, report) = DurableDb::recover(&dir, FsyncPolicy::Never).unwrap();
                assert_eq!(report.records_replayed, 0);
                db
            })
        });
        g.bench_with_input(BenchmarkId::new("recover_full_replay", n), &n, |b, &n| {
            b.iter(|| {
                let (db, report) = DurableDb::recover_with(
                    &dir,
                    FsyncPolicy::Never,
                    RecoveryOptions {
                        use_latest_snapshot: false,
                    },
                )
                .unwrap();
                assert_eq!(report.records_replayed as usize, n + 2);
                db
            })
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
