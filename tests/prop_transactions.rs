//! Differential property suite for the transactional update API:
//! `Transaction::commit` (incremental model maintenance + incremental
//! constraint checking) must agree, verdict for verdict and state for
//! state, with the rebuild-from-scratch oracle (`prover_for` on the
//! candidate theory + a full check of every constraint).
//!
//! Theories are definite by construction (ground facts + positive rules,
//! with occasional existential facts that push the database off the
//! model-backed path), so every sample exercises the engine-backed
//! fast path, and the rejected-commit samples additionally pin atomicity:
//! a refused batch leaves the database observably untouched.

use epilog::core::{ic_satisfaction, prover_for, IcDefinition, IcReport};
use epilog::prelude::*;
use proptest::prelude::*;

const PARAMS: usize = 3;

/// The rule pool: positive, safe, stratified by construction. `hired`
/// feeds the constrained `emp` predicate, so some updates must route to a
/// full constraint recheck through the dependency graph.
const RULES: [&str; 3] = [
    "forall x. hired(x) -> emp(x)",
    "forall x. emp(x) -> person(x)",
    "forall x, y. ss(x, y) -> holder(x)",
];

/// The constraints every sample database lives under.
fn constraints() -> Vec<Formula> {
    vec![
        parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap(),
        parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap(),
        parse("forall x. ~K bad(x)").unwrap(),
    ]
}

/// One update operation, as plain data the strategy can generate.
/// kind: 0/1 = assert/retract a ground fact; 2 = assert an existential.
type RawOp = (u8, u8, u8, u8);

fn op_formula((kind, pred, p1, p2): RawOp) -> (bool, Formula) {
    let a = p1 as usize % PARAMS;
    let n = p2 as usize % PARAMS;
    let src = if kind % 3 == 2 {
        format!("exists y. ss(a{a}, y)")
    } else {
        match pred % 5 {
            0 => format!("emp(a{a})"),
            1 => format!("ss(a{a}, n{n})"),
            2 => format!("hobby(a{a}, n{n})"),
            3 => format!("hired(a{a})"),
            _ => format!("bad(a{a})"),
        }
    };
    (kind % 3 != 1, parse(&src).unwrap())
}

/// Apply one batch through the rebuild-from-scratch oracle: clone the
/// theory, replay the ops in order, rebuild the prover, full-check every
/// constraint. Returns the accepted candidate theory, or `None` when the
/// batch must be rejected.
fn oracle_commit(theory: &Theory, batch: &[(bool, Formula)]) -> Option<Theory> {
    let mut candidate = theory.clone();
    for (is_assert, w) in batch {
        if *is_assert {
            candidate.assert(w.clone()).unwrap();
        } else {
            candidate.retract(w);
        }
    }
    let prover = prover_for(candidate.clone());
    for ic in constraints() {
        if ic_satisfaction(&prover, &ic, IcDefinition::Epistemic) != IcReport::Satisfied {
            return None;
        }
    }
    Some(candidate)
}

/// A ground-facts-only op (no existentials), retract-weighted: 3 of 4
/// kinds retract, so batches drain the seeded registrar and exercise the
/// over-delete/re-derive path far more often than growth.
fn ground_op((kind, pred, p1, p2): RawOp) -> (bool, Formula) {
    let a = p1 as usize % PARAMS;
    let n = p2 as usize % PARAMS;
    let src = match pred % 5 {
        0 => format!("emp(a{a})"),
        1 => format!("ss(a{a}, n{n})"),
        2 => format!("hobby(a{a}, n{n})"),
        3 => format!("hired(a{a})"),
        _ => format!("bad(a{a})"),
    };
    (kind % 4 == 0, parse(&src).unwrap())
}

fn batches() -> impl Strategy<Value = (u8, Vec<Vec<RawOp>>)> {
    (
        0u8..8, // rule-subset mask
        proptest::collection::vec(
            proptest::collection::vec((0u8..6, 0u8..8, 0u8..8, 0u8..8), 1..4),
            0..6,
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Transactional commits agree with the rebuild oracle on every
    /// verdict, on the resulting theory, and on the attached model.
    #[test]
    fn commit_matches_rebuild_from_scratch((mask, raw) in batches()) {
        // Seed theory: a rule subset (facts arrive through commits).
        let mut src = String::new();
        for (i, rule) in RULES.iter().enumerate() {
            if mask & (1 << i) != 0 {
                src.push_str(rule);
                src.push('\n');
            }
        }
        let mut db = EpistemicDb::from_text(&src).unwrap();
        for ic in constraints() {
            db.add_constraint(ic).unwrap();
        }
        let mut shadow = db.theory().clone();

        for raw_batch in &raw {
            let batch: Vec<(bool, Formula)> =
                raw_batch.iter().map(|op| op_formula(*op)).collect();
            let mut txn = db.transaction();
            for (is_assert, w) in &batch {
                txn = if *is_assert {
                    txn.assert(w.clone())
                } else {
                    txn.retract(w.clone())
                };
            }
            let verdict = txn.commit();
            match oracle_commit(&shadow, &batch) {
                Some(accepted) => {
                    prop_assert!(
                        verdict.is_ok(),
                        "commit rejected a batch the oracle accepts: {batch:?}\n{}",
                        verdict.unwrap_err()
                    );
                    shadow = accepted;
                }
                None => {
                    prop_assert!(
                        verdict.is_err(),
                        "commit accepted a batch the oracle rejects: {batch:?}"
                    );
                }
            }
            // Accepted or rejected, the database must now mirror the
            // shadow state exactly…
            prop_assert_eq!(db.theory(), &shadow);
            // …including the attached least model (the incremental splice
            // must be indistinguishable from a from-scratch rebuild).
            let scratch = prover_for(shadow.clone());
            prop_assert_eq!(db.prover().atom_model(), scratch.atom_model());
        }
        prop_assert!(db.satisfies_constraints());
    }

    /// Retract-heavy and mixed ground-fact batches on a fully seeded
    /// definite registrar: every accepted commit must take the
    /// incremental path — retractions through the over-delete/re-derive
    /// fixpoint, additions through the resumed semi-naive fixpoint, with
    /// no full plan fired and nothing compiled — and the resulting state
    /// must be indistinguishable from the rebuild oracle's.
    #[test]
    fn retract_heavy_commits_stay_incremental(
        raw in proptest::collection::vec(
            proptest::collection::vec((0u8..8, 0u8..8, 0u8..8, 0u8..8), 1..5),
            1..6,
        )
    ) {
        let mut src = String::from(
            "forall x. emp(x) -> person(x)\nforall x, y. ss(x, y) -> holder(x)\n",
        );
        for i in 0..PARAMS {
            src.push_str(&format!("emp(a{i})\nss(a{i}, n{i})\nhobby(a{i}, n{i})\n"));
        }
        let mut db = EpistemicDb::from_text(&src).unwrap();
        for ic in constraints() {
            db.add_constraint(ic).unwrap();
        }
        let mut shadow = db.theory().clone();
        for raw_batch in &raw {
            let batch: Vec<(bool, Formula)> =
                raw_batch.iter().map(|op| ground_op(*op)).collect();
            let mut txn = db.transaction();
            for (is_assert, w) in &batch {
                txn = if *is_assert {
                    txn.assert(w.clone())
                } else {
                    txn.retract(w.clone())
                };
            }
            match (txn.commit(), oracle_commit(&shadow, &batch)) {
                (Ok(report), Some(accepted)) => {
                    shadow = accepted;
                    match &report.model {
                        ModelUpdate::Incremental { stats, .. } => {
                            prop_assert_eq!(
                                stats.full_firings, 0,
                                "a facts-only commit must fire no full plan"
                            );
                            prop_assert_eq!(
                                stats.plans_compiled, 0,
                                "a facts-only commit must reuse the cached plans"
                            );
                        }
                        ModelUpdate::Unchanged => {}
                        other => prop_assert!(
                            false,
                            "facts-only commit left the incremental path: {:?}",
                            other
                        ),
                    }
                }
                (Err(_), None) => {}
                (got, want) => prop_assert!(
                    false,
                    "verdict mismatch: commit accepted={} oracle accepted={} on {:?}",
                    got.is_ok(),
                    want.is_some(),
                    batch
                ),
            }
            // Compare as sentence *sets*: a retract-then-reassert pair
            // cancels inside the transaction (the sentence keeps its
            // position) while the oracle's naive replay re-appends it.
            let mut committed: Vec<String> =
                db.theory().sentences().iter().map(|w| w.to_string()).collect();
            let mut replayed: Vec<String> =
                shadow.sentences().iter().map(|w| w.to_string()).collect();
            committed.sort();
            replayed.sort();
            prop_assert_eq!(committed, replayed);
            let scratch = prover_for(shadow.clone());
            prop_assert_eq!(db.prover().atom_model(), scratch.atom_model());
        }
        prop_assert!(db.satisfies_constraints());
    }

    /// MVCC snapshot consistency: handles pinned before/during/after a
    /// stream of commits are immutable — at the end of the run each
    /// still holds exactly the rebuild oracle's state at its commit
    /// LSN, no matter how many later states were published over it.
    #[test]
    fn snapshots_are_immutable_and_match_the_rebuild_oracle((mask, raw) in batches()) {
        use epilog::core::CommittedState;
        use std::sync::Arc;

        let mut src = String::new();
        for (i, rule) in RULES.iter().enumerate() {
            if mask & (1 << i) != 0 {
                src.push_str(rule);
                src.push('\n');
            }
        }
        let mut db = EpistemicDb::from_text(&src).unwrap();
        for ic in constraints() {
            db.add_constraint(ic).unwrap();
        }
        let mut shadow = db.theory().clone();
        let cell = StateCell::new(db.clone(), 0);

        fn sentence_set(t: &Theory) -> Vec<String> {
            let mut v: Vec<String> = t.sentences().iter().map(|w| w.to_string()).collect();
            v.sort();
            v
        }

        // Every handle ever taken, with the oracle's sentence set at
        // its LSN (captured at snapshot time).
        let mut pinned: Vec<(ReadHandle, u64, Vec<String>)> = Vec::new();
        let mut lsn = 0u64;
        pinned.push((cell.snapshot(), lsn, sentence_set(&shadow)));

        for raw_batch in &raw {
            let batch: Vec<(bool, Formula)> =
                raw_batch.iter().map(|op| op_formula(*op)).collect();
            let mut txn = db.transaction();
            for (is_assert, w) in &batch {
                txn = if *is_assert {
                    txn.assert(w.clone())
                } else {
                    txn.retract(w.clone())
                };
            }
            match (txn.commit(), oracle_commit(&shadow, &batch)) {
                (Ok(_), Some(accepted)) => {
                    shadow = accepted;
                    lsn += 1;
                    cell.publish(Arc::new(CommittedState::new(db.clone(), lsn)));
                }
                (Err(_), None) => {}
                (got, want) => prop_assert!(
                    false,
                    "verdict mismatch: commit accepted={} oracle accepted={}",
                    got.is_ok(),
                    want.is_some()
                ),
            }
            pinned.push((cell.snapshot(), lsn, sentence_set(&shadow)));
        }

        prop_assert_eq!(cell.head_lsn(), lsn);
        for (handle, at_lsn, expected) in &pinned {
            prop_assert_eq!(
                handle.lsn(), *at_lsn,
                "a snapshot's LSN stamp must not drift"
            );
            prop_assert_eq!(
                &sentence_set(handle.theory()), expected,
                "snapshot at LSN {} no longer equals the oracle there", at_lsn
            );
        }
    }

    /// The one-shot wrappers stay faithful to their transactional core:
    /// `retract` of an absent sentence reports `false` and changes
    /// nothing; `assert` of a present sentence changes nothing.
    #[test]
    fn oneshot_wrappers_are_single_op_transactions(ops in proptest::collection::vec((0u8..6, 0u8..8, 0u8..8, 0u8..8), 1..8)) {
        let mut db = EpistemicDb::from_text("").unwrap();
        for ic in constraints() {
            db.add_constraint(ic).unwrap();
        }
        let mut shadow = db.theory().clone();
        for op in ops {
            let (is_assert, w) = op_formula(op);
            if is_assert {
                let oracle = oracle_commit(&shadow, &[(true, w.clone())]);
                match db.assert(w.clone()) {
                    Ok(()) => shadow = oracle.expect("oracle must accept"),
                    Err(_) => prop_assert!(oracle.is_none()),
                }
            } else {
                let was_present = shadow.sentences().contains(&w);
                let oracle = oracle_commit(&shadow, &[(false, w.clone())]);
                match db.retract(&w) {
                    Ok(removed) => {
                        prop_assert_eq!(removed, was_present);
                        shadow = oracle.expect("oracle must accept");
                    }
                    Err(_) => prop_assert!(oracle.is_none()),
                }
            }
            prop_assert_eq!(db.theory(), &shadow);
        }
    }
}
