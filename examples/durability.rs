//! Durability walkthrough: commit → crash → recover.
//!
//! The registrar database from the paper's §3, made durable: every
//! commit is appended to a write-ahead log before it is applied, a
//! snapshot checkpoints the state, and recovery — here after a simulated
//! crash that tears the log mid-record — rebuilds exactly the state whose
//! commits were acknowledged.
//!
//! Run with: `cargo run --example durability`

use epilog::persist::wal::WAL_FILE;
use epilog::prelude::*;
use epilog::syntax::Theory;
use std::path::PathBuf;

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("epilog-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn main() {
    let dir = fresh_dir("main");

    // ----- Create + commit durably --------------------------------------
    println!("== A durable registrar at {} ==\n", dir.display());
    let theory = Theory::from_text("forall x. emp(x) -> person(x)").unwrap();
    let mut db = DurableDb::create(&dir, theory, FsyncPolicy::Always).unwrap();
    db.add_constraint(parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap())
        .unwrap();

    let report = db
        .transaction()
        .assert(parse("emp(Mary)").unwrap())
        .assert(parse("ss(Mary, n1)").unwrap())
        .commit()
        .unwrap();
    println!("hired Mary:  {report}");
    let report = db
        .transaction()
        .assert(parse("emp(Sue)").unwrap())
        .assert(parse("ss(Sue, n2)").unwrap())
        .commit()
        .unwrap();
    println!("hired Sue:   {report}");
    println!(
        "log: {} records, {} bytes, LSN {}\n",
        db.wal_records(),
        db.wal_bytes(),
        db.last_lsn()
    );

    // A violating batch is refused — and leaves no log record behind.
    let err = db
        .transaction()
        .assert(parse("emp(Joe)").unwrap()) // no ss number on file
        .commit()
        .unwrap_err();
    println!("hiring Joe (no number) fails: {err}");
    println!("log still has {} records\n", db.wal_records());

    let live_receipts = (db.theory().clone(), db.last_lsn());

    // ----- Crash-simulate ----------------------------------------------
    // Copy the directory as a crashed machine would leave it, then tear
    // the last log record in half (a power cut mid-write).
    let crashed = fresh_dir("crashed");
    std::fs::create_dir_all(&crashed).unwrap();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), crashed.join(entry.file_name())).unwrap();
    }
    let wal = crashed.join(WAL_FILE);
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 11]).unwrap();
    println!("== Crash: tore {} bytes off the log tail ==\n", 11);

    // ----- Recover ------------------------------------------------------
    let (recovered, report) = DurableDb::recover(&crashed, FsyncPolicy::Always).unwrap();
    println!("recovery: {report}");
    println!(
        "recovered theory has {} sentences (live had {})",
        recovered.theory().len(),
        live_receipts.0.len()
    );
    // The torn record was Sue's batch: it rolls back whole. Mary's
    // acknowledged state — including what the rule derives — is intact,
    // the constraints hold, and queries answer as before the crash.
    assert_eq!(
        recovered.ask(&parse("K person(Mary)").unwrap()),
        Answer::Yes
    );
    assert_eq!(recovered.ask(&parse("K emp(Sue)").unwrap()), Answer::No);
    assert!(recovered.satisfies_constraints());
    println!(
        "K person(Mary)? {}",
        recovered.ask(&parse("K person(Mary)").unwrap())
    );
    println!(
        "K emp(Sue)?     {} (her commit was the torn record)\n",
        recovered.ask(&parse("K emp(Sue)").unwrap())
    );

    // ----- Recover the intact directory: receipts match ------------------
    let (recovered, report) = DurableDb::recover(&dir, FsyncPolicy::Always).unwrap();
    println!("recovering the intact log: {report}");
    assert_eq!(recovered.theory(), &live_receipts.0);
    assert_eq!(recovered.last_lsn(), live_receipts.1);
    assert_eq!(recovered.ask(&parse("K person(Sue)").unwrap()), Answer::Yes);
    println!("state and LSN match the live database exactly\n");

    // ----- Checkpoint + compact -----------------------------------------
    let mut recovered = recovered;
    let stats = recovered.compact().unwrap();
    println!(
        "compacted: snapshot @{}, {} log records dropped, {} bytes reclaimed",
        stats.snapshot_lsn, stats.records_dropped, stats.bytes_reclaimed
    );
    drop(recovered);
    let (recovered, report) = DurableDb::recover(&dir, FsyncPolicy::Always).unwrap();
    println!("recovery after compaction: {report}");
    assert_eq!(recovered.theory(), &live_receipts.0);
    assert_eq!(recovered.ask(&parse("K person(Sue)").unwrap()), Answer::Yes);
    println!("snapshot-only recovery reproduces the same state");

    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&crashed).unwrap();
}
