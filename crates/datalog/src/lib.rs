//! # epilog-datalog — a Datalog engine with stratified negation
//!
//! The paper notes (§5.1) that the database `Σ` "could, for example, be a
//! Datalog program and `prove` could be realized using negation-as-failure".
//! This crate realizes that alternative backend, and supplies the *Clark
//! completion* `Comp(DB)` that Definitions 3.3/3.4 (the closed Prolog-like
//! readings of integrity-constraint satisfaction) are stated over.
//!
//! Components:
//!
//! * [`Program`] — Datalog rules `h ← l₁, …, lₙ` with negated body
//!   literals, plus an extensional database;
//! * [`RulePlan`] — rules compiled once into slot-numbered, reordered
//!   join plans with one variant per semi-naive delta position;
//! * stratification ([`Program::stratify`]) and the perfect-model
//!   fixpoint, both naive ([`Program::eval_naive`]) and **semi-naive**
//!   ([`Program::eval`]) — the ablation pair for benches `f2_datalog`
//!   and `f6_scaling`;
//! * [`completion()`](completion::completion) — Clark's completion as FOPCE sentences, ready to be
//!   fed to `epilog-prover` for the Definition 3.3/3.4 comparisons.

pub mod completion;
pub mod engine;
pub mod plan;
pub mod program;
pub mod provenance;
pub mod sld;

pub use completion::completion;
pub use engine::{EvalOptions, EvalStats, PlannerMode, PAR_MIN_FANOUT_ROWS};
pub use plan::RulePlan;
pub use program::{DatalogError, Literal, Program, Rule};
pub use provenance::{ProofTree, ProvenanceSink, Support, SupportTable};
pub use sld::{SldEngine, SldOutcome};
