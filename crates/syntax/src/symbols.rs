//! Interned symbols: predicates, parameters, and variables.
//!
//! FOPCE distinguishes three symbol kinds. *Parameters* play the role of
//! constants but carry a nonstandard semantics: they are pairwise distinct
//! and jointly constitute the universal domain of discourse (the logic bakes
//! in unique-names and domain-closure over the parameters, §2 of the paper).
//!
//! All three kinds are interned in a process-global table so that ids are
//! cheap `u32` handles that can be copied, hashed and compared without
//! touching the string heap.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// Which namespace a symbol lives in. Predicates, parameters and variables
/// are interned in separate namespaces, so `p` the proposition and `p` the
/// parameter do not collide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Space {
    Pred,
    Param,
    Var,
}

#[derive(Default)]
struct Interner {
    names: Vec<String>,
    /// One id map per [`Space`], keyed by owned name but **queried by
    /// `&str`** (via `Borrow<str>`), so the hot lookup-hit path allocates
    /// nothing.
    ids: [HashMap<String, u32>; 3],
}

impl Interner {
    fn intern(&mut self, space: Space, name: &str) -> u32 {
        let map = &mut self.ids[space as usize];
        if let Some(&id) = map.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("symbol table overflow");
        self.names.push(name.to_owned());
        map.insert(name.to_owned(), id);
        id
    }

    fn contains(&self, space: Space, name: &str) -> bool {
        self.ids[space as usize].contains_key(name)
    }

    fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(Interner::default()))
}

fn intern(space: Space, name: &str) -> u32 {
    table()
        .write()
        .expect("symbol table poisoned")
        .intern(space, name)
}

fn resolve(id: u32) -> String {
    table()
        .read()
        .expect("symbol table poisoned")
        .name(id)
        .to_owned()
}

/// A predicate symbol together with its arity.
///
/// Arity is part of the identity: `p/0` (a proposition) and `p/2` are
/// distinct predicates and may coexist.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred {
    id: u32,
    arity: u8,
}

impl Pred {
    /// Intern a predicate symbol of the given arity.
    pub fn new(name: &str, arity: usize) -> Self {
        let arity = u8::try_from(arity).expect("predicate arity > 255 unsupported");
        Pred {
            id: intern(Space::Pred, name),
            arity,
        }
    }

    /// The predicate's name.
    pub fn name(&self) -> String {
        resolve(self.id)
    }

    /// The number of argument positions.
    pub fn arity(&self) -> usize {
        self.arity as usize
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Debug for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name(), self.arity)
    }
}

/// A parameter: one of the countably many pairwise-distinct individuals
/// that make up FOPCE's universal domain of discourse.
///
/// Parameters identify the *known individuals* of a database. The logic's
/// semantics treats distinct parameters as denoting distinct individuals
/// (unique names) and the parameters as exhausting the domain (domain
/// closure) — see §2 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Param(u32);

impl Param {
    /// Intern a parameter by name.
    pub fn new(name: &str) -> Self {
        Param(intern(Space::Param, name))
    }

    /// Create a fresh parameter guaranteed distinct from every parameter
    /// interned so far, for use as an anonymous witness ("labelled null").
    ///
    /// The name is derived from `hint` and a global counter.
    pub fn fresh(hint: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let name = format!("{hint}#{n}");
            // A user could in principle have interned this exact name; skip
            // collisions so freshness is real, not probabilistic.
            let guard = table().read().expect("symbol table poisoned");
            let exists = guard.contains(Space::Param, &name);
            drop(guard);
            if !exists {
                return Param::new(&name);
            }
        }
    }

    /// The parameter's name.
    pub fn name(&self) -> String {
        resolve(self.0)
    }

    /// Whether this parameter was manufactured by [`Param::fresh`].
    pub fn is_fresh(&self) -> bool {
        self.name().contains('#')
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A variable symbol, ranging (under quantification) over the parameters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Intern a variable by name.
    pub fn new(name: &str) -> Self {
        Var(intern(Space::Var, name))
    }

    /// Create a fresh variable distinct from every variable interned so far
    /// (used when renaming apart during transformations).
    pub fn fresh(hint: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let name = format!("{hint}'{n}");
            let guard = table().read().expect("symbol table poisoned");
            let exists = guard.contains(Space::Var, &name);
            drop(guard);
            if !exists {
                return Var::new(&name);
            }
        }
    }

    /// The variable's name.
    pub fn name(&self) -> String {
        resolve(self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Param::new("John");
        let b = Param::new("John");
        assert_eq!(a, b);
        assert_eq!(a.name(), "John");
    }

    #[test]
    fn namespaces_are_disjoint() {
        let p = Param::new("p");
        let v = Var::new("p");
        // Different types, but also different underlying identities: the
        // name round-trips independently.
        assert_eq!(p.name(), "p");
        assert_eq!(v.name(), "p");
    }

    #[test]
    fn pred_arity_is_identity() {
        let p0 = Pred::new("p", 0);
        let p2 = Pred::new("p", 2);
        assert_ne!(p0, p2);
        assert_eq!(p0.arity(), 0);
        assert_eq!(p2.arity(), 2);
    }

    #[test]
    fn fresh_params_are_distinct() {
        let a = Param::fresh("w");
        let b = Param::fresh("w");
        assert_ne!(a, b);
        assert!(a.is_fresh());
        assert!(!Param::new("John").is_fresh());
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let a = Var::fresh("x");
        let b = Var::fresh("x");
        assert_ne!(a, b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Pred::new("Teach", 2).to_string(), "Teach");
        assert_eq!(format!("{:?}", Pred::new("Teach", 2)), "Teach/2");
        assert_eq!(format!("{:?}", Var::new("x")), "?x");
    }
}
