//! The `EpistemicDb` facade: a database that knows things.
//!
//! Wraps a FOPCE theory with the paper's full machinery: epistemic query
//! answering, the `demo` evaluator, integrity constraints as epistemic
//! sentences with transactional update checking, and closed-world views.

use crate::ask;
use crate::closure::ClosedDb;
use crate::constraints::{ic_satisfaction, IcDefinition, IcReport};
use crate::demo;
use crate::engine::prover_for;
use crate::incremental::{CompiledConstraint, IncrementalChecker, RuleGraph};
use crate::transaction::Transaction;
use epilog_datalog::{ProofTree, SupportTable};
use epilog_prover::Prover;
use epilog_semantics::Answer;
use epilog_syntax::formula::Atom;
use epilog_syntax::theory::TheoryError;
use epilog_syntax::{Admissibility, Formula, Param, Theory};
use std::fmt;

/// The structured explanation of a constraint rejection: which constraint
/// the update would violate, the ground tuples witnessing the violation
/// (an instantiation of the constraint's positive `K`-literals that makes
/// the violation body certain in the candidate state), and — when
/// provenance is enabled ([`EpistemicDb::enable_provenance`]) — a
/// derivation [`ProofTree`] for each witness that the support table can
/// explain.
#[derive(Debug, Clone)]
pub struct Rejection {
    /// The violated constraint, as registered.
    pub constraint: Formula,
    /// Ground witness tuples that trigger the violation in the rejected
    /// candidate state. Best-effort: empty when no instantiation of the
    /// constraint's positive patterns over the candidate's certain atoms
    /// reproduces the violation (e.g. a disjunctive theory made a trigger
    /// atom certain without any atom witnessing it).
    pub witnesses: Vec<Atom>,
    /// Proof trees for the witnesses the support table can explain (EDB
    /// witnesses appear as [`ProofTree::Fact`] leaves). Empty when
    /// provenance is disabled.
    pub proofs: Vec<ProofTree>,
}

impl Rejection {
    /// Build the explanation for a violated constraint against the
    /// (rejected) candidate state. `table` is the candidate's maintained
    /// support table when provenance is enabled.
    pub(crate) fn explain(
        ic: &Formula,
        prover: &Prover,
        table: Option<&SupportTable>,
    ) -> Box<Rejection> {
        let witnesses = CompiledConstraint::compile(ic)
            .map(|c| c.violation_witnesses(prover))
            .unwrap_or_default();
        let proofs = match (table, crate::engine::definite_program(prover.theory())) {
            (Some(t), Some(prog)) => witnesses
                .iter()
                .filter_map(|w| {
                    let tuple = epilog_datalog::provenance::params_of(w)?;
                    t.why(&prog.edb, w.pred, &tuple)
                })
                .collect(),
            _ => Vec::new(),
        };
        Box::new(Rejection {
            constraint: ic.clone(),
            witnesses,
            proofs,
        })
    }
}

/// Errors from [`EpistemicDb`] operations.
#[derive(Debug)]
pub enum DbError {
    /// The sentence was not a valid database sentence.
    Theory(TheoryError),
    /// An update was rejected because it would violate an integrity
    /// constraint; the [`Rejection`] carries the offending constraint
    /// plus its ground witnesses (and proof trees, when provenance is
    /// enabled) and the database is unchanged.
    ConstraintViolated(Box<Rejection>),
    /// A query outside the admissible fragment was given to `demo`.
    NotAdmissible(Admissibility),
    /// A constraint must be a sentence.
    OpenConstraint(Formula),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Theory(e) => write!(f, "{e}"),
            DbError::ConstraintViolated(r) => {
                write!(
                    f,
                    "update rejected: constraint `{}` would be violated",
                    r.constraint
                )?;
                if !r.witnesses.is_empty() {
                    write!(f, " (witnesses: ")?;
                    for (i, w) in r.witnesses.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{w}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            DbError::NotAdmissible(a) => write!(f, "query not admissible: {a}"),
            DbError::OpenConstraint(ic) => {
                write!(f, "constraint `{ic}` has free variables")
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<TheoryError> for DbError {
    fn from(e: TheoryError) -> Self {
        DbError::Theory(e)
    }
}

/// A deductive database with epistemic queries and epistemic integrity
/// constraints.
///
/// Updates go through [`EpistemicDb::transaction`]: a batch of
/// `assert`/`retract` operations validated against the compiled
/// constraints and applied atomically, with the attached least model
/// maintained incrementally where possible. The one-shot
/// [`EpistemicDb::assert`]/[`EpistemicDb::retract`] wrap single-operation
/// transactions.
///
/// An `EpistemicDb` is `Clone + Sync`: queries take `&self`, so an
/// immutable clone wrapped in an `Arc` is a consistent snapshot any
/// number of reader threads can query concurrently (see
/// [`crate::mvcc`]). Cloning is cheap relative to commits — the theory,
/// model, and compiled plans are copied, none recomputed.
#[derive(Clone)]
pub struct EpistemicDb {
    pub(crate) prover: Prover,
    pub(crate) constraints: Vec<Formula>,
    /// The constraints compiled for incremental checking; `None` when at
    /// least one registered constraint is outside the compilable
    /// `¬∃x̄ (K-conjunction)` fragment (commits then re-check in full).
    pub(crate) checker: Option<IncrementalChecker>,
    /// The rule dependency graph used to route constraint checks, cached
    /// across commits: it depends only on the rule-shaped sentences, so
    /// ground-atom commits reuse it and only rule-changing commits (a
    /// retraction, or an asserted non-atom) rebuild it.
    pub(crate) rule_graph: RuleGraph,
    /// The compiled [`epilog_datalog::RulePlan`] set of the definite
    /// program, cached across commits like the constraint `rule_graph`:
    /// plans depend only on the rule-shaped sentences, so ground-atom
    /// commits resume the fixpoint through these without compiling
    /// anything, and only rule-changing commits rebuild them (with cost
    /// statistics read from the then-current least model). `None` when
    /// the theory is not a definite program.
    pub(crate) rule_plans: Option<Vec<epilog_datalog::RulePlan>>,
    /// Total least-model size at the time `rule_plans` was compiled: the
    /// baseline for the staleness trigger. Cached plans embed literal
    /// orderings costed against the model as it looked back then; when the
    /// model has since halved or doubled, those orderings may be inverted,
    /// so [`EpistemicDb::maybe_recost_plans`] recompiles against fresh
    /// statistics.
    pub(crate) plans_model_size: usize,
    /// How many times the staleness trigger has recompiled the cached
    /// plans (observable via [`EpistemicDb::plan_recosts`]).
    pub(crate) plan_recosts: u64,
    /// The provenance side table: one [`epilog_datalog::Support`] list per
    /// derived tuple of the attached least model, recorded by the traced
    /// fixpoints and maintained incrementally across commits alongside the
    /// cached plans. `None` until [`EpistemicDb::enable_provenance`] —
    /// tracking is strictly opt-in and commits on a provenance-off db run
    /// the untraced fixpoints unchanged.
    pub(crate) support_table: Option<SupportTable>,
}

impl EpistemicDb {
    /// Open a database over a theory. Definite (fact + positive-rule)
    /// theories are routed through the bottom-up engine: their least model
    /// is materialized once and answers ground-atom questions directly.
    pub fn new(theory: Theory) -> Self {
        let rule_graph = RuleGraph::new(&theory);
        let prover = prover_for(theory);
        let rule_plans = Self::compile_rule_plans(&prover);
        let plans_model_size = prover.atom_model().map_or(0, |m| m.len());
        EpistemicDb {
            prover,
            constraints: Vec::new(),
            checker: Some(IncrementalChecker::default()),
            rule_graph,
            rule_plans,
            plans_model_size,
            plan_recosts: 0,
            support_table: None,
        }
    }

    /// Compile the cross-commit rule-plan cache for a prover whose theory
    /// is a definite program, using the attached least model as the cost
    /// statistics source (it covers intensional relations too). `None`
    /// outside the definite fragment — those theories have no resumable
    /// fixpoint to cache plans for.
    pub(crate) fn compile_rule_plans(prover: &Prover) -> Option<Vec<epilog_datalog::RulePlan>> {
        let model = prover.atom_model()?;
        let prog = crate::engine::definite_program(prover.theory())?;
        Some(
            prog.rules
                .iter()
                .map(|r| epilog_datalog::RulePlan::compile_with_stats(r, Some(model)))
                .collect(),
        )
    }

    /// Re-cost the cached rule plans when the attached least model has
    /// drifted far from the statistics they were compiled against: the
    /// cost-based literal ordering is only as good as its cardinality
    /// estimates, and a model that has at least halved or doubled in
    /// total size since compile time can invert join orders. Called after
    /// fact-only commits (rule-changing commits recompile unconditionally,
    /// resetting the baseline). Cheap when the trigger does not fire: one
    /// `len()` and two comparisons.
    pub(crate) fn maybe_recost_plans(&mut self) {
        let Some(model) = self.prover.atom_model() else {
            return;
        };
        let cur = model.len().max(1);
        let base = self.plans_model_size.max(1);
        if cur >= base * 2 || base >= cur * 2 {
            self.rule_plans = Self::compile_rule_plans(&self.prover);
            self.plans_model_size = cur;
            self.plan_recosts += 1;
        }
    }

    /// How many times the planner's staleness trigger has recompiled the
    /// cached rule plans because the least model's total size halved or
    /// doubled since they were last costed.
    pub fn plan_recosts(&self) -> u64 {
        self.plan_recosts
    }

    /// Open a database over a theory whose least model the caller has
    /// already materialized — e.g. restored from a snapshot — skipping the
    /// fixpoint recomputation [`EpistemicDb::new`] would run. The caller
    /// asserts that `model` **is** the least model of `theory` and that
    /// `theory` is a definite program; debug builds verify both.
    pub fn with_attached_model(theory: Theory, model: epilog_storage::Database) -> Self {
        debug_assert_eq!(
            crate::engine::definite_model(&theory).as_ref(),
            Some(&model),
            "attached model must be the theory's least model"
        );
        let rule_graph = RuleGraph::new(&theory);
        let prover = Prover::new(theory).with_atom_model(model);
        let rule_plans = Self::compile_rule_plans(&prover);
        let plans_model_size = prover.atom_model().map_or(0, |m| m.len());
        EpistemicDb {
            prover,
            constraints: Vec::new(),
            checker: Some(IncrementalChecker::default()),
            rule_graph,
            rule_plans,
            plans_model_size,
            plan_recosts: 0,
            support_table: None,
        }
    }

    /// Open a database from theory text.
    pub fn from_text(src: &str) -> Result<Self, DbError> {
        Ok(EpistemicDb::new(Theory::from_text(src)?))
    }

    /// The underlying theory.
    pub fn theory(&self) -> &Theory {
        self.prover.theory()
    }

    /// The underlying prover (for advanced callers: `demo`, benches).
    pub fn prover(&self) -> &Prover {
        &self.prover
    }

    /// The registered integrity constraints.
    pub fn constraints(&self) -> &[Formula] {
        &self.constraints
    }

    // ----- provenance -----------------------------------------------------

    /// Turn on derivation tracking: re-run the definite fixpoint once with
    /// a [`epilog_datalog::ProvenanceSink`] attached, recording one
    /// `Support { rule_idx, parents }` per derived tuple of the least
    /// model. From then on every ground-atom commit maintains the table
    /// incrementally (the growth fixpoint appends supports; the DRed
    /// deletion fixpoint consumes them, skipping re-derivation probes for
    /// tuples whose recorded alternative support survives) and
    /// rule-changing commits rebuild it. Returns `false` — provenance
    /// stays off — when the theory is not a definite program (there is no
    /// bottom-up derivation to record); a later commit that leaves the
    /// definite fragment also switches it back off. Idempotent.
    pub fn enable_provenance(&mut self) -> bool {
        if self.support_table.is_some() {
            return true;
        }
        let Some(prog) = crate::engine::definite_program(self.prover.theory()) else {
            return false;
        };
        let mut table = SupportTable::new();
        if prog
            .eval_traced(epilog_datalog::EvalOptions::default(), &mut table)
            .is_err()
        {
            return false;
        }
        self.support_table = Some(table);
        true
    }

    /// Whether derivation tracking is currently on.
    pub fn provenance_enabled(&self) -> bool {
        self.support_table.is_some()
    }

    /// Size of the provenance side table as `(atoms, supports)`: how many
    /// derived tuples have at least one recorded support, and how many
    /// supports are recorded in total. `(0, 0)` when provenance is off.
    pub fn provenance_size(&self) -> (usize, usize) {
        self.support_table
            .as_ref()
            .map_or((0, 0), |t| (t.num_atoms(), t.num_supports()))
    }

    /// Explain a ground atom of the least model: a minimal-height
    /// [`ProofTree`] walking recorded supports down to EDB facts. `None`
    /// when provenance is off, the atom is not ground, or the atom is not
    /// in the model (the *why-not* answer: nothing derives it).
    pub fn why(&self, atom: &Atom) -> Option<ProofTree> {
        let table = self.support_table.as_ref()?;
        let tuple = epilog_datalog::provenance::params_of(atom)?;
        let prog = crate::engine::definite_program(self.prover.theory())?;
        table.why(&prog.edb, atom.pred, &tuple)
    }

    /// The raw support table, for the persistence layer to serialize.
    pub fn support_table(&self) -> Option<&SupportTable> {
        self.support_table.as_ref()
    }

    /// Install a support table **without** re-deriving it — for trusted
    /// callers restoring a previously recorded state (the persistence
    /// layer loading a snapshot's `[supports]` section). The caller
    /// asserts the table is exactly what the traced fixpoint would record
    /// for the current theory; debug builds verify consistency.
    pub fn adopt_provenance(&mut self, table: SupportTable) {
        debug_assert!(
            {
                let prog = crate::engine::definite_program(self.prover.theory());
                match (&prog, self.prover.atom_model()) {
                    (Some(p), Some(m)) => table.consistent_with(m, p.rules.len()),
                    _ => false,
                }
            },
            "adopted support table is inconsistent with the attached model"
        );
        self.support_table = Some(table);
    }

    // ----- queries --------------------------------------------------------

    /// Answer a KFOPCE sentence query: yes / no / unknown
    /// (Definition 2.1), via the Levesque-style reduction.
    pub fn ask(&self, q: &Formula) -> Answer {
        ask::ask(&self.prover, q)
    }

    /// All certain answers to an open KFOPCE query.
    pub fn answers(&self, q: &Formula) -> Vec<Vec<Param>> {
        ask::answers(&self.prover, q)
    }

    /// Run the Prolog-style `demo` evaluator (sound for admissible
    /// queries, Theorem 5.1); returns the lazy binding stream.
    pub fn demo(&self, q: &Formula) -> Result<demo::DemoStream<'_>, DbError> {
        demo::demo(&self.prover, q).map_err(DbError::NotAdmissible)
    }

    /// All (deduplicated) `demo` answers — the §6.1.1 iteration.
    pub fn demo_all(&self, q: &Formula) -> Result<Vec<Vec<Param>>, DbError> {
        demo::all_answers(&self.prover, q).map_err(DbError::NotAdmissible)
    }

    // ----- integrity ------------------------------------------------------

    /// Register a constraint (a KFOPCE sentence). The current state must
    /// satisfy it, otherwise the registration is rejected. Accepted
    /// constraints are recompiled for incremental checking; if any
    /// registered constraint falls outside the compilable fragment,
    /// commits verify every constraint in full instead.
    pub fn add_constraint(&mut self, ic: Formula) -> Result<(), DbError> {
        if !ic.is_sentence() {
            return Err(DbError::OpenConstraint(ic));
        }
        if ic_satisfaction(&self.prover, &ic, IcDefinition::Epistemic) != IcReport::Satisfied {
            return Err(DbError::ConstraintViolated(Rejection::explain(
                &ic,
                &self.prover,
                self.support_table.as_ref(),
            )));
        }
        self.constraints.push(ic);
        self.checker = IncrementalChecker::new(&self.constraints).ok();
        Ok(())
    }

    /// Register a constraint **without** verifying that the current state
    /// satisfies it — for trusted callers restoring a previously
    /// validated state, e.g. the persistence layer loading a checksummed
    /// snapshot whose constraints held when it was written (re-running
    /// the full satisfaction check there would make snapshot recovery
    /// slower than log replay, defeating its purpose). Debug builds still
    /// verify. Everything else matches [`EpistemicDb::add_constraint`].
    pub fn adopt_constraint(&mut self, ic: Formula) -> Result<(), DbError> {
        if !ic.is_sentence() {
            return Err(DbError::OpenConstraint(ic));
        }
        debug_assert!(
            ic_satisfaction(&self.prover, &ic, IcDefinition::Epistemic) == IcReport::Satisfied,
            "adopted constraint `{ic}` is violated by the current state"
        );
        self.constraints.push(ic);
        self.checker = IncrementalChecker::new(&self.constraints).ok();
        Ok(())
    }

    /// Whether the database currently satisfies every registered
    /// constraint (`Σ ⊨ IC` for each, Definition 3.5).
    pub fn satisfies_constraints(&self) -> bool {
        self.constraints.iter().all(|ic| {
            ic_satisfaction(&self.prover, ic, IcDefinition::Epistemic) == IcReport::Satisfied
        })
    }

    // ----- updates --------------------------------------------------------

    /// Open a transaction: a batch of `assert`/`retract` operations
    /// validated against the compiled constraints and applied atomically
    /// on [`Transaction::commit`]. See [`crate::transaction`] for the
    /// incremental-maintenance machinery behind it.
    pub fn transaction(&mut self) -> Transaction<'_> {
        Transaction::new(self)
    }

    /// Transactionally assert a sentence: if the enlarged database would
    /// violate a constraint, the update is rejected and the state is
    /// unchanged. Equivalent to a single-operation
    /// [`EpistemicDb::transaction`].
    pub fn assert(&mut self, w: Formula) -> Result<(), DbError> {
        self.transaction().assert(w).commit().map(|_| ())
    }

    /// Transactionally retract a sentence (no-op when absent, without
    /// cloning or re-checking anything); constraint checked like
    /// [`EpistemicDb::assert`]. Returns whether the sentence was present.
    pub fn retract(&mut self, w: &Formula) -> Result<bool, DbError> {
        let report = self.transaction().retract(w.clone()).commit()?;
        Ok(report.retracted > 0)
    }

    // ----- closed world ----------------------------------------------------

    /// The closed-world view: the unique model of `Closure(Σ)`,
    /// materialized (§7).
    pub fn closed(&self) -> ClosedDb {
        ClosedDb::new(&self.prover)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::parse;

    fn db(src: &str) -> EpistemicDb {
        EpistemicDb::from_text(src).unwrap()
    }

    #[test]
    fn ask_and_answers() {
        let d = db("Teach(John, Math)\nexists x. Teach(x, CS)");
        assert_eq!(d.ask(&parse("K Teach(John, Math)").unwrap()), Answer::Yes);
        assert_eq!(d.ask(&parse("Teach(John, CS)").unwrap()), Answer::Unknown);
        let got = d.answers(&parse("K Teach(John, x)").unwrap());
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn demo_passthrough() {
        let d = db("p(a)\nq(a)");
        let got = d.demo_all(&parse("K p(x) & K q(x)").unwrap()).unwrap();
        assert_eq!(got.len(), 1);
        assert!(d.demo(&parse("exists x. p(x) & ~K q(x)").unwrap()).is_err());
    }

    #[test]
    fn constraint_lifecycle() {
        let mut d = db("emp(Mary)\nss(Mary, n1)");
        let ic = parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap();
        d.add_constraint(ic.clone()).unwrap();
        assert!(d.satisfies_constraints());
        // Adding an employee without a number is rejected.
        let err = d.assert(parse("emp(Sue)").unwrap()).unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolated(_)));
        // State unchanged.
        assert_eq!(d.ask(&parse("K emp(Sue)").unwrap()), Answer::No);
        // Adding both facts in the right order: number first.
        d.assert(parse("ss(Sue, n2)").unwrap()).unwrap();
        d.assert(parse("emp(Sue)").unwrap()).unwrap();
        assert!(d.satisfies_constraints());
    }

    #[test]
    fn constraint_must_hold_at_registration() {
        let mut d = db("emp(Mary)");
        let ic = parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap();
        assert!(matches!(
            d.add_constraint(ic),
            Err(DbError::ConstraintViolated(_))
        ));
        assert!(d.constraints().is_empty());
    }

    #[test]
    fn retract_can_restore_integrity_paths() {
        let mut d = db("emp(Mary)\nss(Mary, n1)");
        d.add_constraint(parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap())
            .unwrap();
        // Retracting the ss fact while Mary is an employee is rejected.
        let err = d.retract(&parse("ss(Mary, n1)").unwrap()).unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolated(_)));
        // Retract the employee first, then the number.
        assert!(d.retract(&parse("emp(Mary)").unwrap()).unwrap());
        assert!(d.retract(&parse("ss(Mary, n1)").unwrap()).unwrap());
        assert!(!d.retract(&parse("ss(Mary, n1)").unwrap()).unwrap());
    }

    #[test]
    fn fact_drift_triggers_plan_recosting() {
        let mut d = db("e(a, b)\nforall x, y. e(x, y) -> t(x, y)");
        assert_eq!(d.plan_recosts(), 0);
        // The model is {e(a,b), t(a,b)}; one more edge doubles it to 4
        // tuples, tripping the staleness trigger.
        d.assert(parse("e(b, c)").unwrap()).unwrap();
        assert_eq!(d.plan_recosts(), 1);
        // The baseline reset to 4: sub-doubling growth stays quiet.
        d.assert(parse("hobby(c, chess)").unwrap()).unwrap();
        assert_eq!(d.plan_recosts(), 1);
        // Rule commits recompile unconditionally and reset the baseline
        // without counting as a re-cost.
        d.assert(parse("forall x, y. t(x, y) -> u(x, y)").unwrap())
            .unwrap();
        assert_eq!(d.plan_recosts(), 1);
    }

    #[test]
    fn open_constraint_rejected() {
        let mut d = db("p(a)");
        assert!(matches!(
            d.add_constraint(parse("K p(x)").unwrap()),
            Err(DbError::OpenConstraint(_))
        ));
    }

    #[test]
    fn closed_view() {
        let d = db("p(a)\nq(b)");
        let c = d.closed();
        assert!(c.satisfiable());
        assert_eq!(c.ask(&parse("~p(b)").unwrap()), Answer::Yes);
    }
}
