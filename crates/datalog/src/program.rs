//! Datalog programs: rules with (possibly negated) body literals over an
//! extensional database.

use epilog_storage::Database;
use epilog_syntax::formula::{Atom, Formula};
use epilog_syntax::{Pred, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A body literal: an atom with a polarity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    /// The atom.
    pub atom: Atom,
    /// `true` for a positive occurrence, `false` for `not atom`.
    pub positive: bool,
}

/// A Datalog rule `head ← body`. Facts are rules with empty bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body literals, evaluated left to right.
    pub body: Vec<Literal>,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " <- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                if !l.positive {
                    write!(f, "~")?;
                }
                write!(f, "{}", l.atom)?;
            }
        }
        Ok(())
    }
}

/// Why a formula or program was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A sentence does not have the shape `∀x̄ (literals ⊃ atom)` or a
    /// ground atom.
    NotARule(String),
    /// A head or negated-body variable does not occur in a positive body
    /// literal (the Datalog safety condition).
    Unsafe(String),
    /// Negation occurs in a recursive cycle — the program is not
    /// stratifiable and has no perfect model.
    NotStratifiable(String),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::NotARule(s) => write!(f, "`{s}` is not a Datalog rule"),
            DatalogError::Unsafe(s) => write!(f, "rule `{s}` is unsafe"),
            DatalogError::NotStratifiable(p) => {
                write!(f, "negation through recursion on predicate `{p}`")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

/// A Datalog program: rules plus an extensional database (EDB).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The rules (facts included as body-less rules).
    pub rules: Vec<Rule>,
    /// Extensional facts.
    pub edb: Database,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Add an extensional ground fact.
    pub fn fact(&mut self, atom: &Atom) {
        self.edb.insert(atom);
    }

    /// Add a rule after checking Datalog safety: every head variable and
    /// every variable of a negated literal must occur in some positive body
    /// literal.
    pub fn rule(&mut self, rule: Rule) -> Result<(), DatalogError> {
        let positive_vars: BTreeSet<Var> = rule
            .body
            .iter()
            .filter(|l| l.positive)
            .flat_map(|l| l.atom.vars())
            .collect();
        let needs: Vec<Var> = rule
            .head
            .vars()
            .into_iter()
            .chain(
                rule.body
                    .iter()
                    .filter(|l| !l.positive)
                    .flat_map(|l| l.atom.vars()),
            )
            .collect();
        for v in needs {
            if !positive_vars.contains(&v) {
                return Err(DatalogError::Unsafe(rule.to_string()));
            }
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Build a program from FOPCE sentences of the restricted shapes:
    /// ground atoms (facts) and `∀x̄ (l₁ ∧ … ∧ lₙ ⊃ atom)` where each `lᵢ`
    /// is an atom or negated atom.
    pub fn from_sentences(sentences: &[Formula]) -> Result<Self, DatalogError> {
        let mut prog = Program::new();
        for s in sentences {
            match s {
                Formula::Atom(a) if a.is_ground() => prog.fact(a),
                _ => {
                    let rule =
                        as_datalog_rule(s).ok_or_else(|| DatalogError::NotARule(s.to_string()))?;
                    prog.rule(rule)?;
                }
            }
        }
        Ok(prog)
    }

    /// Every predicate mentioned anywhere (heads, bodies, EDB).
    pub fn preds(&self) -> BTreeSet<Pred> {
        let mut out: BTreeSet<Pred> = self.edb.preds().into_iter().collect();
        for r in &self.rules {
            out.insert(r.head.pred);
            for l in &r.body {
                out.insert(l.atom.pred);
            }
        }
        out
    }

    /// The intensional predicates (appearing in some head).
    pub fn idb_preds(&self) -> BTreeSet<Pred> {
        self.rules.iter().map(|r| r.head.pred).collect()
    }

    /// Assign each predicate a stratum such that positive dependencies stay
    /// within or below, and negative dependencies go strictly below.
    /// Returns `Err` when negation occurs through recursion.
    pub fn stratify(&self) -> Result<BTreeMap<Pred, usize>, DatalogError> {
        let preds: Vec<Pred> = self.preds().into_iter().collect();
        let mut stratum: BTreeMap<Pred, usize> = preds.iter().map(|p| (*p, 0)).collect();
        let max_iters = preds.len().saturating_add(2) * preds.len().saturating_add(2);
        for _ in 0..max_iters {
            let mut changed = false;
            for r in &self.rules {
                let h = stratum[&r.head.pred];
                for l in &r.body {
                    let b = stratum[&l.atom.pred];
                    let need = if l.positive { b } else { b + 1 };
                    if h < need {
                        stratum.insert(r.head.pred, need);
                        changed = true;
                    }
                }
            }
            if !changed {
                // A stratum above the predicate count implies a negative
                // cycle was being chased.
                if let Some((p, _)) = stratum.iter().find(|(_, &s)| s > preds.len()) {
                    return Err(DatalogError::NotStratifiable(p.name()));
                }
                return Ok(stratum);
            }
        }
        let culprit = self
            .rules
            .iter()
            .flat_map(|r| r.body.iter())
            .find(|l| !l.positive)
            .map(|l| l.atom.pred.name())
            .unwrap_or_default();
        Err(DatalogError::NotStratifiable(culprit))
    }
}

/// Decompose `∀x̄ (conjunction of literals ⊃ atom)` into a Datalog rule.
fn as_datalog_rule(w: &Formula) -> Option<Rule> {
    let mut cur = w;
    while let Formula::Forall(_, body) = cur {
        cur = body;
    }
    let Formula::Implies(body, head) = cur else {
        // A bare (possibly non-ground) atom as a rule with empty body.
        if let Formula::Atom(a) = cur {
            return Some(Rule {
                head: a.clone(),
                body: vec![],
            });
        }
        return None;
    };
    let Formula::Atom(h) = head.as_ref() else {
        return None;
    };
    let mut lits = Vec::new();
    if !collect_literals(body, &mut lits) {
        return None;
    }
    Some(Rule {
        head: h.clone(),
        body: lits,
    })
}

fn collect_literals(w: &Formula, out: &mut Vec<Literal>) -> bool {
    match w {
        Formula::Atom(a) => {
            out.push(Literal {
                atom: a.clone(),
                positive: true,
            });
            true
        }
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Atom(a) => {
                out.push(Literal {
                    atom: a.clone(),
                    positive: false,
                });
                true
            }
            _ => false,
        },
        Formula::And(a, b) => collect_literals(a, out) && collect_literals(b, out),
        _ => false,
    }
}

/// Convenience: parse a program from formula text, one sentence per line.
impl Program {
    /// Parse using the `epilog-syntax` formula grammar: ground atoms are
    /// facts, `forall x̄. body -> head` sentences are rules.
    pub fn from_text(src: &str) -> Result<Self, String> {
        let sentences = epilog_syntax::parse_theory(src).map_err(|e| e.to_string())?;
        Program::from_sentences(&sentences).map_err(|e| e.to_string())
    }

    /// Render the rules as FOPCE sentences (ground facts included).
    pub fn sentences(&self) -> Vec<Formula> {
        let mut out: Vec<Formula> = self.edb.atoms().map(Formula::Atom).collect();
        for r in &self.rules {
            out.push(rule_sentence(r));
        }
        out
    }
}

/// The FOPCE sentence of a rule.
pub(crate) fn rule_sentence(r: &Rule) -> Formula {
    let head = Formula::Atom(r.head.clone());
    if r.body.is_empty() {
        return head;
    }
    let lits: Vec<Formula> = r
        .body
        .iter()
        .map(|l| {
            let a = Formula::Atom(l.atom.clone());
            if l.positive {
                a
            } else {
                Formula::not(a)
            }
        })
        .collect();
    let body = Formula::and_all(lits).expect("nonempty body");
    let mut w = Formula::implies(body, head);
    let mut vars: Vec<Var> = Vec::new();
    for l in &r.body {
        for v in l.atom.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    for v in vars.into_iter().rev() {
        w = Formula::forall(v, w);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_text_parses_facts_and_rules() {
        let p = Program::from_text(
            "e(a, b)
             e(b, c)
             forall x, y. e(x, y) -> t(x, y)
             forall x, y, z. e(x, y) & t(y, z) -> t(x, z)",
        )
        .unwrap();
        assert_eq!(p.edb.len(), 2);
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn negated_body_literals() {
        let p = Program::from_text(
            "node(a)
             node(b)
             e(a, b)
             forall x, y. node(x) & node(y) & ~e(x, y) -> unreached(x, y)",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 1);
        assert!(!p.rules[0].body[2].positive);
    }

    #[test]
    fn safety_rejected() {
        let mut p = Program::new();
        let head = match epilog_syntax::parse("q(x, y)").unwrap() {
            Formula::Atom(a) => a,
            _ => unreachable!(),
        };
        let batom = match epilog_syntax::parse("p(x)").unwrap() {
            Formula::Atom(a) => a,
            _ => unreachable!(),
        };
        let r = Rule {
            head,
            body: vec![Literal {
                atom: batom,
                positive: true,
            }],
        };
        assert!(matches!(p.rule(r), Err(DatalogError::Unsafe(_))));
    }

    #[test]
    fn non_rule_rejected() {
        let err = Program::from_text("p(a) | q(a)").unwrap_err();
        assert!(err.contains("not a Datalog rule"));
    }

    #[test]
    fn stratification_layers() {
        let p = Program::from_text(
            "e(a, b)
             forall x, y. e(x, y) -> t(x, y)
             forall x, y. t(x, y) & ~e(x, y) -> extra(x, y)",
        )
        .unwrap();
        let s = p.stratify().unwrap();
        let e = Pred::new("e", 2);
        let t = Pred::new("t", 2);
        let extra = Pred::new("extra", 2);
        assert!(s[&t] >= s[&e]);
        assert!(s[&extra] > s[&e]);
    }

    #[test]
    fn negation_through_recursion_rejected() {
        let p = Program::from_text(
            "p(a)
             forall x. p(x) & ~q(x) -> r(x)
             forall x. r(x) -> q(x)
             forall x. q(x) -> r(x)",
        )
        .unwrap();
        assert!(matches!(
            p.stratify(),
            Err(DatalogError::NotStratifiable(_))
        ));
    }

    #[test]
    fn rule_display() {
        let p = Program::from_text("forall x. p(x) & ~q(x) -> r(x)").unwrap();
        assert_eq!(p.rules[0].to_string(), "r(x) <- p(x), ~q(x)");
    }

    #[test]
    fn sentences_round_trip() {
        let src = "e(a, b)\nforall x, y. e(x, y) -> t(x, y)";
        let p = Program::from_text(src).unwrap();
        let rendered = p.sentences();
        let p2 = Program::from_sentences(&rendered).unwrap();
        assert_eq!(p.rules, p2.rules);
        assert_eq!(p.edb, p2.edb);
    }
}
