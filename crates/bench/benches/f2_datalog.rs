//! F2 — substrate ablation: semi-naive vs naive Datalog evaluation on
//! transitive closure, runtime vs chain length.
//!
//! Shape expectation: naive re-derives the whole `t` relation every
//! iteration (Θ(n) iterations × Θ(n²) derivations); semi-naive touches
//! each derivation once — the gap grows roughly linearly with `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epilog_bench::workloads::datalog_chain;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Correctness gate.
    {
        let p = datalog_chain(10);
        let (a, fast) = p.eval().unwrap();
        let (b, slow) = p.eval_naive().unwrap();
        assert_eq!(a, b);
        assert!(fast.derivations < slow.derivations);
    }

    let mut g = c.benchmark_group("f2_datalog");
    g.sample_size(10);
    for n in [8usize, 16, 32, 64] {
        let prog = datalog_chain(n);
        g.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval().unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_naive().unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
