//! Top-down SLDNF resolution: the Prolog-style counterpart of the
//! bottom-up engine.
//!
//! §5.1 of the paper observes that the database "could, for example, be a
//! Datalog program and `prove` could be realized using
//! negation-as-failure". This module realizes exactly that: goal-directed
//! SLD resolution with finite negation-as-failure over a stratifiable
//! program, with a depth bound guarding against non-terminating
//! left-recursion (bottom-up evaluation, which always terminates, remains
//! the reference; the two are cross-checked in tests).

use crate::program::{Literal, Program, Rule};
use epilog_syntax::formula::Atom;
use epilog_syntax::{Param, Term, Var};
use std::collections::HashMap;

/// Outcome of an SLDNF query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SldOutcome {
    /// The goal succeeded; the answer substitutions for the goal's
    /// variables, one entry per solution (deduplicated).
    Success(Vec<HashMap<Var, Param>>),
    /// The goal finitely failed within the depth bound.
    Failure,
    /// The depth bound was hit before the search completed: no verdict.
    DepthExceeded,
}

/// An SLDNF resolution engine over a program.
pub struct SldEngine<'a> {
    program: &'a Program,
    /// Maximum resolution depth (number of rule applications along one
    /// derivation branch).
    pub max_depth: usize,
}

impl<'a> SldEngine<'a> {
    /// Create an engine with a default depth bound of 256.
    ///
    /// # Panics
    /// Panics if a rule repeats a variable in its head (e.g.
    /// `t(x, x) ← …`): the one-pass unifier here does not implement the
    /// triangular substitutions that case needs. Normalize such rules by
    /// renaming one occurrence and adding a joining body atom, or use the
    /// bottom-up engine, which supports them.
    pub fn new(program: &'a Program) -> Self {
        for rule in &program.rules {
            let occurrences = rule
                .head
                .terms
                .iter()
                .filter(|t| matches!(t, Term::Var(_)))
                .count();
            assert_eq!(
                occurrences,
                rule.head.vars().len(),
                "SLD engine does not support repeated head variables: {rule}"
            );
        }
        SldEngine {
            program,
            max_depth: 256,
        }
    }

    /// Solve a conjunctive goal of literals, left to right.
    pub fn solve(&self, goal: &[Literal]) -> SldOutcome {
        let mut solutions = Vec::new();
        let mut exceeded = false;
        let mut stack = Vec::new();
        self.solve_rec(
            goal,
            &HashMap::new(),
            0,
            &mut stack,
            &mut solutions,
            &mut exceeded,
        );
        if !solutions.is_empty() {
            // Deduplicate while preserving order.
            let goal_vars: Vec<Var> = goal.iter().flat_map(|l| l.atom.vars()).collect();
            let mut seen: Vec<HashMap<Var, Param>> = Vec::new();
            for s in solutions {
                // Restrict to the goal's own variables.
                let restricted: HashMap<Var, Param> = s
                    .into_iter()
                    .filter(|(v, _)| goal_vars.contains(v))
                    .collect();
                if !seen.contains(&restricted) {
                    seen.push(restricted);
                }
            }
            SldOutcome::Success(seen)
        } else if exceeded {
            SldOutcome::DepthExceeded
        } else {
            SldOutcome::Failure
        }
    }

    /// Whether a single ground atom is derivable.
    pub fn proves(&self, atom: &Atom) -> Option<bool> {
        match self.solve(&[Literal {
            atom: atom.clone(),
            positive: true,
        }]) {
            SldOutcome::Success(_) => Some(true),
            SldOutcome::Failure => Some(false),
            SldOutcome::DepthExceeded => None,
        }
    }

    fn solve_rec(
        &self,
        goal: &[Literal],
        env: &HashMap<Var, Param>,
        depth: usize,
        stack: &mut Vec<Atom>,
        solutions: &mut Vec<HashMap<Var, Param>>,
        exceeded: &mut bool,
    ) {
        if depth > self.max_depth {
            *exceeded = true;
            return;
        }
        let Some((first, rest)) = goal.split_first() else {
            solutions.push(env.clone());
            return;
        };
        if first.positive {
            // Loop check: a ground positive goal recurring in its own
            // derivation branch can never contribute a new proof — prune.
            // This makes SLD terminate on cyclic recursive data (datalog
            // has finitely many ground atoms), matching bottom-up.
            let instantiated = apply_atom(&first.atom, env);
            let ground_goal = instantiated.is_ground();
            if ground_goal {
                if stack.contains(&instantiated) {
                    return;
                }
                stack.push(instantiated);
            }
            // EDB match.
            for env2 in self.match_edb(&first.atom, env) {
                self.solve_rec(rest, &env2, depth + 1, stack, solutions, exceeded);
            }
            // Rule resolution.
            for rule in self
                .program
                .rules
                .iter()
                .filter(|r| r.head.pred == first.atom.pred)
            {
                let rule = rename_rule(rule);
                if let Some((env2, head_bind)) = unify_atom(&rule.head, &first.atom, env) {
                    // Instantiate the (fresh) rule body with the head
                    // bindings, then prepend it to the remaining goal.
                    let mut new_goal: Vec<Literal> = rule
                        .body
                        .iter()
                        .map(|l| Literal {
                            atom: l.atom.subst(&head_bind),
                            positive: l.positive,
                        })
                        .collect();
                    new_goal.extend_from_slice(rest);
                    self.solve_rec(&new_goal, &env2, depth + 1, stack, solutions, exceeded);
                }
            }
            if ground_goal {
                stack.pop();
            }
        } else {
            // Negation as failure: the negated atom must be ground here
            // (guaranteed by Datalog safety and left-to-right selection).
            let ground = apply_atom(&first.atom, env);
            assert!(
                ground.is_ground(),
                "floundering: negated subgoal {ground} is not ground"
            );
            let mut sub_solutions = Vec::new();
            let mut sub_exceeded = false;
            let mut sub_stack = Vec::new();
            self.solve_rec(
                &[Literal {
                    atom: ground,
                    positive: true,
                }],
                &HashMap::new(),
                depth + 1,
                &mut sub_stack,
                &mut sub_solutions,
                &mut sub_exceeded,
            );
            if sub_exceeded {
                *exceeded = true;
                return;
            }
            if sub_solutions.is_empty() {
                self.solve_rec(rest, env, depth + 1, stack, solutions, exceeded);
            }
        }
    }

    fn match_edb(&self, atom: &Atom, env: &HashMap<Var, Param>) -> Vec<HashMap<Var, Param>> {
        let pattern: Vec<Option<Param>> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Param(p) => Some(*p),
                Term::Var(v) => env.get(v).copied(),
            })
            .collect();
        let mut out = Vec::new();
        for tuple in self.program.edb.select(atom.pred, &pattern) {
            if let Some(env2) = bind_tuple(atom, tuple, env) {
                out.push(env2);
            }
        }
        out
    }
}

/// Apply an environment to an atom, grounding its bound variables.
fn apply_atom(atom: &Atom, env: &HashMap<Var, Param>) -> Atom {
    let map: HashMap<Var, Term> = env.iter().map(|(v, p)| (*v, Term::Param(*p))).collect();
    atom.subst(&map)
}

/// Extend the environment by matching an atom against a stored tuple;
/// `None` on clash.
fn bind_tuple(
    atom: &Atom,
    tuple: &[Param],
    env: &HashMap<Var, Param>,
) -> Option<HashMap<Var, Param>> {
    let mut env2 = env.clone();
    for (t, val) in atom.terms.iter().zip(tuple) {
        match t {
            Term::Param(p) => {
                if p != val {
                    return None;
                }
            }
            Term::Var(v) => match env2.get(v) {
                Some(bound) if bound != val => return None,
                _ => {
                    env2.insert(*v, *val);
                }
            },
        }
    }
    Some(env2)
}

/// Rename a rule's variables apart from everything (fresh per resolution
/// step — the standard standardizing-apart).
fn rename_rule(rule: &Rule) -> Rule {
    let mut ren: HashMap<Var, Term> = HashMap::new();
    for a in std::iter::once(&rule.head).chain(rule.body.iter().map(|l| &l.atom)) {
        for v in a.vars() {
            ren.entry(v)
                .or_insert_with(|| Term::Var(Var::fresh(&v.name())));
        }
    }
    Rule {
        head: rule.head.subst(&ren),
        body: rule
            .body
            .iter()
            .map(|l| Literal {
                atom: l.atom.subst(&ren),
                positive: l.positive,
            })
            .collect(),
    }
}

/// Unify a (standardized-apart) rule head with a goal atom under the
/// current environment.
///
/// Orientation matters: head variables are fresh, so variable–variable
/// pairs bind *head → goal* — the caller substitutes the returned
/// `head_bind` into the rule body, after which the body speaks in the
/// goal's variables and every body success propagates to the goal
/// automatically. Parameter bindings of goal variables extend the
/// environment. Returns `None` on clash.
fn unify_atom(
    head: &Atom,
    goal: &Atom,
    env: &HashMap<Var, Param>,
) -> Option<(HashMap<Var, Param>, HashMap<Var, Term>)> {
    debug_assert_eq!(head.pred, goal.pred);
    let mut env2 = env.clone();
    let mut head_bind: HashMap<Var, Term> = HashMap::new();
    for (h, g) in head.terms.iter().zip(&goal.terms) {
        // Resolve the goal side under the environment.
        let gval: Option<Param> = match g {
            Term::Param(p) => Some(*p),
            Term::Var(v) => env2.get(v).copied(),
        };
        // Resolve the head side under the accumulated head bindings.
        let hres: Term = match h {
            Term::Param(p) => Term::Param(*p),
            Term::Var(v) => head_bind.get(v).copied().unwrap_or(Term::Var(*v)),
        };
        match (hres, gval) {
            (Term::Param(hp), Some(gp)) => {
                if hp != gp {
                    return None;
                }
            }
            (Term::Param(hp), None) => {
                // Goal variable becomes bound to the head's parameter.
                let Term::Var(gv) = g else {
                    unreachable!("gval None implies goal term is a variable")
                };
                env2.insert(*gv, hp);
            }
            (Term::Var(hv), Some(gp)) => {
                head_bind.insert(hv, Term::Param(gp));
            }
            (Term::Var(hv), None) => {
                let Term::Var(gv) = g else {
                    unreachable!("gval None implies goal term is a variable")
                };
                head_bind.insert(hv, Term::Var(*gv));
            }
        }
    }
    Some((env2, head_bind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use epilog_syntax::parse;

    fn atom(src: &str) -> Atom {
        match parse(src).unwrap() {
            epilog_syntax::Formula::Atom(a) => a,
            other => panic!("not an atom: {other}"),
        }
    }

    fn engine_program() -> Program {
        Program::from_text(
            "e(a, b)
             e(b, c)
             e(c, d)
             forall x, y. e(x, y) -> t(x, y)
             forall x, y, z. e(x, y) & t(y, z) -> t(x, z)",
        )
        .unwrap()
    }

    #[test]
    fn ground_goals() {
        let p = engine_program();
        let eng = SldEngine::new(&p);
        assert_eq!(eng.proves(&atom("e(a, b)")), Some(true));
        assert_eq!(eng.proves(&atom("e(b, a)")), Some(false));
        assert_eq!(eng.proves(&atom("t(a, d)")), Some(true));
        assert_eq!(eng.proves(&atom("t(d, a)")), Some(false));
    }

    #[test]
    fn open_goals_enumerate_answers() {
        let p = engine_program();
        let eng = SldEngine::new(&p);
        let goal = vec![Literal {
            atom: atom("t(a, x)"),
            positive: true,
        }];
        match eng.solve(&goal) {
            SldOutcome::Success(sols) => {
                assert_eq!(sols.len(), 3, "t(a,b), t(a,c), t(a,d)");
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn negation_as_failure() {
        let p = Program::from_text(
            "p(a)
             p(b)
             q(a)",
        )
        .unwrap();
        let eng = SldEngine::new(&p);
        let goal = vec![
            Literal {
                atom: atom("p(x)"),
                positive: true,
            },
            Literal {
                atom: atom("q(x)"),
                positive: false,
            },
        ];
        match eng.solve(&goal) {
            SldOutcome::Success(sols) => {
                assert_eq!(sols.len(), 1);
                let x = Var::new("x");
                assert_eq!(sols[0][&x].name(), "b");
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn sld_agrees_with_bottom_up() {
        let p = engine_program();
        let (model, _) = p.eval().unwrap();
        let eng = SldEngine::new(&p);
        // Every derivable t-atom is provable top-down, and vice versa.
        for a in ["a", "b", "c", "d"] {
            for b in ["a", "b", "c", "d"] {
                let at = atom(&format!("t({a}, {b})"));
                assert_eq!(
                    eng.proves(&at),
                    Some(model.contains(&at)),
                    "divergence on t({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn left_recursion_hits_depth_bound() {
        // t(x,z) ← t(x,y), e(y,z): left-recursive; SLD loops, the bound
        // converts the loop into DepthExceeded (bottom-up handles it
        // fine — that asymmetry is the point of keeping both engines).
        let p = Program::from_text(
            "e(a, b)
             forall x, y. e(x, y) -> t(x, y)
             forall x, y, z. t(x, y) & e(y, z) -> t(x, z)",
        )
        .unwrap();
        let mut eng = SldEngine::new(&p);
        eng.max_depth = 64;
        // A failing ground goal forces exhaustive search into the loop.
        assert_eq!(eng.proves(&atom("t(b, a)")), None);
        // Bottom-up is unfazed.
        let (model, _) = p.eval().unwrap();
        assert!(!model.contains(&atom("t(b, a)")));
    }

    #[test]
    fn same_generation_top_down() {
        let p = Program::from_text(
            "par(c1, p1)
             par(c2, p1)
             par(p1, g1)
             par(p2, g1)
             forall x, y, z. par(x, z) & par(y, z) -> sg(x, y)
             forall x, y, u, v. par(x, u) & sg(u, v) & par(y, v) -> sg(x, y)",
        )
        .unwrap();
        let eng = SldEngine::new(&p);
        assert_eq!(eng.proves(&atom("sg(c1, c2)")), Some(true));
        assert_eq!(eng.proves(&atom("sg(c1, p1)")), Some(false));
        // Cross-check the full relation against bottom-up.
        let (model, _) = p.eval().unwrap();
        for a in ["c1", "c2", "p1", "p2", "g1"] {
            for b in ["c1", "c2", "p1", "p2", "g1"] {
                let at = atom(&format!("sg({a}, {b})"));
                assert_eq!(eng.proves(&at), Some(model.contains(&at)), "sg({a},{b})");
            }
        }
    }
}
