//! The employee registrar, updated through batched transactions (§8).
//!
//! Reiter's §8 asks for incremental integrity checking: "when a
//! (normally) small change is made to [a KB], it should not be necessary
//! to verify all its constraints all over again." This example drives the
//! `Transaction` API through the paper's employee/ss-number scenario and
//! prints each commit's receipt — which constraints were skipped,
//! specialized, or re-checked in full, and whether the least model was
//! resumed from the transaction's delta or rebuilt.
//!
//! Run with: `cargo run --example transactions`

use epilog::prelude::*;

fn main() {
    // A definite theory: ground facts plus one positive rule, so the
    // engine attaches a least model and commits can maintain it
    // incrementally.
    let mut db = EpistemicDb::from_text(
        "emp(Mary)
         ss(Mary, n1)
         forall x. emp(x) -> person(x)",
    )
    .unwrap();

    // The §3 constraints: every known employee has a known number, and
    // numbers are unique (the epistemic functional dependency).
    db.add_constraint(parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap())
        .unwrap();
    db.add_constraint(parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap())
        .unwrap();

    // ----- A batched commit ---------------------------------------------
    // One-shot asserts would have to order "number before employee"; a
    // transaction is validated only at commit, so the batch can list the
    // facts in any order and is accepted or rejected as a whole.
    println!("== Hiring Sue and Joe in one transaction ==\n");
    let report = db
        .transaction()
        .assert(parse("emp(Sue)").unwrap())
        .assert(parse("ss(Sue, n2)").unwrap())
        .assert(parse("emp(Joe)").unwrap())
        .assert(parse("ss(Joe, n3)").unwrap())
        .commit()
        .unwrap();
    println!("  committed: {report}\n");
    match report.model {
        ModelUpdate::Incremental {
            tuples_added,
            tuples_removed,
            stats,
        } => {
            println!(
                "  model resumed from the delta: +{tuples_added} -{tuples_removed} tuples, \
                 {} delta firings, {} full plans (always 0 here)\n",
                stats.rule_firings, stats.full_firings
            );
        }
        other => println!("  unexpected model path: {other:?}\n"),
    }
    assert_eq!(db.ask(&parse("K person(Joe)").unwrap()), Answer::Yes);

    // ----- A rejected commit --------------------------------------------
    // The batch hires Tim without a number: the emp constraint's
    // violation instance for Tim is certain, so the whole batch — Pat's
    // perfectly fine facts included — is rejected and nothing changes.
    println!("== A constraint-violating batch is rejected wholesale ==\n");
    let sentences_before = db.theory().len();
    let err = db
        .transaction()
        .assert(parse("emp(Pat)").unwrap())
        .assert(parse("ss(Pat, n4)").unwrap())
        .assert(parse("emp(Tim)").unwrap()) // no number on file
        .commit()
        .unwrap_err();
    println!("  rejected: {err}");
    assert_eq!(db.theory().len(), sentences_before);
    assert_eq!(db.ask(&parse("K emp(Pat)").unwrap()), Answer::No);
    println!("  database unchanged ({sentences_before} sentences)\n");

    // ----- Constraint routing -------------------------------------------
    // An update far from every constraint skips them all; an ss update
    // specializes the functional dependency to the one new fact.
    println!("== What does each commit actually check? ==\n");
    let report = db
        .transaction()
        .assert(parse("hobby(Mary, chess)").unwrap())
        .commit()
        .unwrap();
    println!("  hobby(Mary, chess):  {report}");
    let err = db
        .transaction()
        .assert(parse("ss(Mary, n9)").unwrap()) // second number for Mary
        .commit()
        .unwrap_err();
    println!("  ss(Mary, n9):        rejected ({err})\n");

    // ----- Retraction ----------------------------------------------------
    // Retracting Mary's number while she is an employee violates the emp
    // constraint; retracting both in one batch is fine. Retracting an
    // absent sentence is a no-op that never clones the theory.
    println!("== Retraction under constraints ==\n");
    let err = db
        .transaction()
        .retract(parse("ss(Mary, n1)").unwrap())
        .commit()
        .unwrap_err();
    println!("  - ss(Mary, n1) alone: rejected ({err})");
    let report = db
        .transaction()
        .retract(parse("emp(Mary)").unwrap())
        .retract(parse("ss(Mary, n1)").unwrap())
        .commit()
        .unwrap();
    println!("  - emp(Mary), ss(Mary, n1) together: {report}");
    let report = db
        .transaction()
        .retract(parse("emp(Mary)").unwrap()) // already gone
        .commit()
        .unwrap();
    println!("  - emp(Mary) again: {report}");
    assert!(db.satisfies_constraints());

    println!("\nfinal state:\n{}", indent(&db.theory().to_string()));
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
