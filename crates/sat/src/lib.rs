//! # epilog-sat — a from-scratch CDCL SAT solver
//!
//! The propositional engine underneath the FOPCE theorem prover
//! (`epilog-prover`). First-order entailment `Σ ⊨ f` over the function-free
//! FOPCE fragment is decided by grounding `Σ ∧ ¬f` and testing the
//! resulting propositional formula for unsatisfiability; this crate does
//! the propositional part.
//!
//! Components:
//!
//! * [`Lit`]/[`Cnf`] — literals and clause databases;
//! * [`Prop`] + [`tseitin`] — arbitrary propositional formulas and their
//!   equisatisfiable CNF encoding;
//! * [`Solver`] — conflict-driven clause learning with two-watched
//!   literals, 1-UIP learning, VSIDS branching, and Luby restarts;
//! * [`solve_dpll`] — a plain DPLL baseline (unit propagation +
//!   chronological backtracking, no learning), kept as the ablation
//!   comparison for bench `f3_sat`;
//! * model enumeration ([`Solver::enumerate`]) via blocking clauses, used
//!   by the semantic oracle and by circumscription.

pub mod cnf;
pub mod dpll;
pub mod solver;

pub use cnf::{tseitin, Cnf, Lit, Prop};
pub use dpll::solve_dpll;
pub use solver::{SatResult, Solver};
